package roadnet

import (
	"math"
)

// nodeHeap is a binary min-heap of (node, dist) pairs specialised for
// Dijkstra. We avoid container/heap's interface indirection on the hot path.
type nodeHeap struct {
	node []NodeID
	dist []float64
}

func (h *nodeHeap) push(u NodeID, d float64) {
	h.node = append(h.node, u)
	h.dist = append(h.dist, d)
	i := len(h.node) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.dist[parent] <= h.dist[i] {
			break
		}
		h.node[parent], h.node[i] = h.node[i], h.node[parent]
		h.dist[parent], h.dist[i] = h.dist[i], h.dist[parent]
		i = parent
	}
}

func (h *nodeHeap) pop() (NodeID, float64) {
	u, d := h.node[0], h.dist[0]
	last := len(h.node) - 1
	h.node[0], h.dist[0] = h.node[last], h.dist[last]
	h.node = h.node[:last]
	h.dist = h.dist[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.dist[l] < h.dist[small] {
			small = l
		}
		if r < last && h.dist[r] < h.dist[small] {
			small = r
		}
		if small == i {
			break
		}
		h.node[i], h.node[small] = h.node[small], h.node[i]
		h.dist[i], h.dist[small] = h.dist[small], h.dist[i]
		i = small
	}
	return u, d
}

func (h *nodeHeap) empty() bool { return len(h.node) == 0 }

func (h *nodeHeap) reset() {
	h.node = h.node[:0]
	h.dist = h.dist[:0]
}

// ShortestPath returns SP(from, to, t): the quickest travel time in seconds
// departing `from` at time t, using the single slot containing t (weights are
// static within a slot, matching the paper's per-slot averaging). Returns
// +Inf if `to` is unreachable.
func ShortestPath(g *Graph, from, to NodeID, t float64) float64 {
	e := NewSSSP(g)
	return e.Distance(from, to, t)
}

// PathResult is a shortest path with its per-node arrival times.
type PathResult struct {
	Nodes []NodeID  // node sequence, Nodes[0] == from
	Times []float64 // arrival time at each node; Times[0] == departure time
	DistM float64   // total length in metres
}

// TravelTime returns the total traversal time of the path in seconds.
func (p *PathResult) TravelTime() float64 {
	if len(p.Times) == 0 {
		return 0
	}
	return p.Times[len(p.Times)-1] - p.Times[0]
}

// Path computes the quickest path from->to departing at time t, advancing the
// clock edge by edge so that each edge's weight is taken from the slot in
// which it is entered (true time-dependent traversal — used when vehicles
// physically move through the network). Returns nil if unreachable.
func Path(g *Graph, from, to NodeID, t float64) *PathResult {
	n := g.NumNodes()
	if int(from) >= n || int(to) >= n || from < 0 || to < 0 {
		return nil
	}
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = Invalid
	}
	dist[from] = t
	var h nodeHeap
	h.push(from, t)
	for !h.empty() {
		u, du := h.pop()
		if done[u] {
			continue
		}
		done[u] = true
		if u == to {
			break
		}
		for _, e := range g.OutEdges(u) {
			if done[e.To] {
				continue
			}
			// du is the arrival (absolute) time at u; the edge is entered at du.
			nd := du + g.EdgeTime(e, du)
			if nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
				h.push(e.To, nd)
			}
		}
	}
	if !done[to] {
		return nil
	}
	// Reconstruct.
	var rev []NodeID
	for u := to; u != Invalid; u = prev[u] {
		rev = append(rev, u)
	}
	res := &PathResult{
		Nodes: make([]NodeID, len(rev)),
		Times: make([]float64, len(rev)),
	}
	for i := range rev {
		u := rev[len(rev)-1-i]
		res.Nodes[i] = u
		res.Times[i] = dist[u]
	}
	for i := 0; i+1 < len(res.Nodes); i++ {
		u, v := res.Nodes[i], res.Nodes[i+1]
		for _, e := range g.OutEdges(u) {
			if e.To == v {
				res.DistM += float64(e.LenM)
				break
			}
		}
	}
	return res
}

// SSSP is a reusable bounded single-source Dijkstra engine. Scratch arrays
// are epoch-stamped so consecutive searches cost O(visited), not O(n).
// An SSSP instance is not safe for concurrent use; create one per goroutine.
type SSSP struct {
	g     *Graph
	dist  []float64
	stamp []uint32
	done  []uint32
	epoch uint32
	heap  nodeHeap
}

// NewSSSP returns an engine bound to g.
func NewSSSP(g *Graph) *SSSP {
	n := g.NumNodes()
	return &SSSP{
		g:     g,
		dist:  make([]float64, n),
		stamp: make([]uint32, n),
		done:  make([]uint32, n),
	}
}

// Distance returns SP(from,to,t) using the slot containing t.
func (s *SSSP) Distance(from, to NodeID, t float64) float64 {
	res := s.run(from, Slot(t), math.Inf(1), to)
	return res.get(to)
}

// FromSource runs a bounded single-source search from `from` in the slot of
// t, exploring only nodes whose travel time is ≤ bound (seconds). The
// returned view is valid until the next call on this engine.
func (s *SSSP) FromSource(from NodeID, t, bound float64) DistView {
	return s.run(from, Slot(t), bound, Invalid)
}

// DistView is a read-only view of the distances computed by one SSSP run.
type DistView struct {
	s     *SSSP
	epoch uint32
}

// Get returns the travel time from the run's source to u, or +Inf if u was
// not settled within the bound.
func (v DistView) Get(u NodeID) float64 { return v.get(u) }

func (v DistView) get(u NodeID) float64 {
	if v.s.done[u] != v.epoch {
		return math.Inf(1)
	}
	return v.s.dist[u]
}

func (s *SSSP) run(from NodeID, slot int, bound float64, target NodeID) DistView {
	s.epoch++
	ep := s.epoch
	s.heap.reset()
	s.dist[from] = 0
	s.stamp[from] = ep
	s.heap.push(from, 0)
	g := s.g
	for !s.heap.empty() {
		u, du := s.heap.pop()
		if s.done[u] == ep {
			continue
		}
		if du > bound {
			break
		}
		s.done[u] = ep
		if u == target {
			break
		}
		for _, e := range g.OutEdges(u) {
			if s.done[e.To] == ep {
				continue
			}
			nd := du + g.EdgeTimeSlot(e, slot)
			if nd > bound {
				continue
			}
			if s.stamp[e.To] != ep || nd < s.dist[e.To] {
				s.dist[e.To] = nd
				s.stamp[e.To] = ep
				s.heap.push(e.To, nd)
			}
		}
	}
	return DistView{s: s, epoch: ep}
}

// StronglyConnected reports whether the graph is strongly connected — a
// sanity invariant for synthetic cities (every restaurant must be able to
// reach every customer).
func StronglyConnected(g *Graph) bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	reach := func(adj func(NodeID) []Edge) int {
		seen := make([]bool, n)
		stack := []NodeID{0}
		seen[0] = true
		count := 0
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			count++
			for _, e := range adj(u) {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		return count
	}
	return reach(g.OutEdges) == n && reach(g.InEdges) == n
}
