package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// TestCCHMatchesDijkstra pins the CCH query against the SSSP oracle on
// random strongly connected graphs across slots. Hierarchy sums associate
// min-plus terms differently from label-setting, so the comparison is
// tolerance-based here; bitwise identity is pinned separately on integer
// weights by the cross-backend suite.
func TestCCHMatchesDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 60, 180)
		f := NewCCHFactory()
		r := f.NewRouter(g)
		e := NewSSSP(g)
		for trial := 0; trial < 200; trial++ {
			from := NodeID(rng.Intn(60))
			to := NodeID(rng.Intn(60))
			at := float64(rng.Intn(SlotsPerDay)) * 3600
			want := e.Distance(from, to, at)
			got := r.Travel(from, to, at)
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("seed %d: cch(%d->%d, %v) = %v, dijkstra = %v", seed, from, to, at, got, want)
			}
		}
	}
}

// TestCCHTravelManyMatchesTravel: the batched path shares the forward chain
// but must land the exact same floats as per-pair queries.
func TestCCHTravelManyMatchesTravel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 50, 120)
	r := NewCCHFactory().NewRouter(g).(*CCHRouter)
	for trial := 0; trial < 30; trial++ {
		from := NodeID(rng.Intn(50))
		targets := make([]NodeID, 1+rng.Intn(12))
		for i := range targets {
			targets[i] = NodeID(rng.Intn(50))
		}
		at := float64(rng.Intn(SlotsPerDay)) * 3600
		many := r.TravelMany(from, targets, at)
		for i, to := range targets {
			if one := r.Travel(from, to, at); many[i] != one {
				t.Fatalf("TravelMany[%d] (%d->%d) = %v, Travel = %v", i, from, to, many[i], one)
			}
		}
	}
}

func TestCCHSelfAndUnreachable(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode(geo.Point{})
	v := b.AddNode(geo.Point{Lat: 1})
	w := b.AddNode(geo.Point{Lat: 2})
	b.AddEdge(u, v, 10, 10, 0)
	g := b.MustBuild()
	r := NewCCHFactory().NewRouter(g)
	if d := r.Travel(u, u, 0); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
	if d := r.Travel(u, w, 0); !math.IsInf(d, 1) {
		t.Fatalf("unreachable = %v, want +Inf", d)
	}
	if d := r.Travel(u, v, 0); d != 10 {
		t.Fatalf("edge distance = %v, want 10", d)
	}
}

// TestCCHIncrementalMatchesFull drives a PatchReweighted epoch chain through
// one factory and pins every built slot's customized arrays bitwise-equal to
// a from-scratch customization over the same epoch graph. This is the
// invariant that lets the dirty-cell path replace the full one on the
// publish hot path.
func TestCCHIncrementalMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := patchTestGraph(t, 24, rng)

	cum := NewSlotWeights()
	f := NewCCHFactory()
	var prevGraph *Graph
	var cur *CCHRouter
	for round := 0; round < 8; round++ {
		dirty := NewDirtyCells()
		delta := NewSlotWeights()
		for k := 0; k < 1+rng.Intn(5); k++ {
			u := NodeID(rng.Intn(g.NumNodes()))
			outs := g.OutEdges(u)
			if len(outs) == 0 {
				continue
			}
			v := outs[rng.Intn(len(outs))].To
			slot := rng.Intn(SlotsPerDay)
			if err := cum.Set(u, v, slot, 20+rng.Float64()*400); err != nil {
				t.Fatal(err)
			}
			dirty.Mark(u, v, slot)
		}
		dirty.Range(func(u, v NodeID, _ uint32) {
			if row := cum.row(u, v); row != nil {
				if err := delta.PutRow(u, v, *row); err != nil {
					t.Fatal(err)
				}
			}
		})

		var eg *Graph
		if prevGraph == nil {
			eg = g.Reweighted(cum)
		} else {
			var err error
			eg, err = g.PatchReweighted(prevGraph, delta, dirty)
			if err != nil {
				t.Fatal(err)
			}
		}
		cur = f.NewRouter(eg).(*CCHRouter)
		// Build every slot so the next round's patch has work to do on all
		// of them.
		for s := 0; s < SlotsPerDay; s++ {
			cur.m.slot(s)
		}
		// From-scratch reference over the same epoch graph.
		ref := newCCHMetric(cur.m.prep, eg, nil)
		for s := 0; s < SlotsPerDay; s++ {
			got, want := cur.m.slot(s), ref.slot(s)
			for a := range want.up {
				if got.up[a] != want.up[a] || got.down[a] != want.down[a] {
					t.Fatalf("round %d slot %d arc %d: incremental (U=%v D=%v) != full (U=%v D=%v)",
						round, s, a, got.up[a], got.down[a], want.up[a], want.down[a])
				}
			}
		}
		prevGraph = eg
	}

	stats := cur.MetricStats()
	if stats.FullCustomizations == 0 || stats.IncrementalCustomizations == 0 {
		t.Fatalf("expected both customization kinds, got %+v", stats)
	}
}

// TestCCHFactoryReuse: same epoch graph → shared metric; patched epoch →
// incremental customization, counted in the stats shared across epochs.
func TestCCHFactoryReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := patchTestGraph(t, 20, rng)
	f := NewCCHFactory()
	r1 := f.NewRouter(g).(*CCHRouter)
	r2 := f.NewRouter(g).(*CCHRouter)
	if r1.m != r2.m {
		t.Fatal("routers for the same graph must share one metric")
	}
	if kind := r1.RouterKind(); kind != "cch" {
		t.Fatalf("RouterKind = %q, want cch", kind)
	}
	_ = r1.Travel(0, 5, 0) // force slot 0 customization
	if st := r1.MetricStats(); st.FullCustomizations != 1 {
		t.Fatalf("full customizations = %d, want 1", st.FullCustomizations)
	}

	// A patch epoch off g re-customizes only the built slot, incrementally.
	w := NewSlotWeights()
	dirty := NewDirtyCells()
	v := g.OutEdges(0)[0].To
	if err := w.Set(0, v, 0, 999); err != nil {
		t.Fatal(err)
	}
	dirty.Mark(0, v, 0)
	base := g.Reweighted(NewSlotWeights()) // epoch anchored on g
	rb := f.NewRouter(base).(*CCHRouter)
	_ = rb.Travel(0, 5, 0)
	patched, err := g.PatchReweighted(base, w, dirty)
	if err != nil {
		t.Fatal(err)
	}
	rp := f.NewRouter(patched).(*CCHRouter)
	stBefore := rp.MetricStats()
	if stBefore.IncrementalCustomizations == 0 {
		t.Fatalf("expected an incremental customization at publish, got %+v", stBefore)
	}
	if d := rp.Travel(0, 5, 0); math.IsNaN(d) {
		t.Fatal("patched router returned NaN")
	}
}
