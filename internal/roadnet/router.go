package roadnet

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Router is the unified shortest-path substrate of the assignment pipeline:
// Travel returns the quickest travel time in seconds from -> to departing at
// time t (seconds since midnight), or +Inf when `to` is unreachable (or
// beyond a backend's expansion bound).
//
// Every pipeline stage, the simulator and the online engine consume their
// distance oracle through this interface, so backends — per-query Dijkstra,
// bounded single-source expansion with row memoisation, hub labels
// (spindex.Index), or a caching decorator — are swappable via a single
// option without touching stage code.
//
// Concurrency is backend-specific: NewDijkstraRouter and NewLRURouter are
// safe for concurrent use, a bounded router (DistCache) is not — the engine
// therefore builds one Router per zone shard, and the simulator drives one
// from a single goroutine. Check the constructor's documentation before
// sharing a Router across goroutines.
type Router interface {
	Travel(from, to NodeID, t float64) float64
}

// Travel implements Router, making every shortest-path closure a Router.
func (f SPFunc) Travel(from, to NodeID, t float64) float64 { return f(from, to, t) }

// Resettable is implemented by Routers whose memoised state can be dropped
// (the simulator and engine call it at hourly slot boundaries to bound
// memory; rows keyed by slot never go stale, so this is optional).
type Resettable interface {
	Reset()
}

// Kinded is implemented by Routers that name their backend for telemetry:
// the engine's sampled router-query histograms label series by this kind
// (falling back to the dynamic type name). Purely observational.
type Kinded interface {
	RouterKind() string
}

// ManyRouter is implemented by Routers that can answer a one-source
// many-target batch with shared work: one upward (CCH), one label load (hub
// labels) or one early-terminating Dijkstra expansion (SSSP backends) serves
// every target, instead of |targets| independent point queries. The returned
// slice is freshly allocated, aligned with targets, and carries exactly the
// values |targets| Travel calls would return (+Inf for unreachable or
// out-of-bound targets).
type ManyRouter interface {
	Router
	TravelMany(from NodeID, targets []NodeID, t float64) []float64
}

// TravelMany answers a one-source many-target batch through any Router:
// backends implementing ManyRouter run one shared search; everything else
// falls back to per-pair Travel. Values are identical either way, so callers
// on decision paths may use this unconditionally.
func TravelMany(rt Router, from NodeID, targets []NodeID, t float64) []float64 {
	if mr, ok := rt.(ManyRouter); ok {
		return mr.TravelMany(from, targets, t)
	}
	out := make([]float64, len(targets))
	for i, to := range targets {
		out[i] = rt.Travel(from, to, t)
	}
	return out
}

// MetricStats counts the customization work a re-customizable routing
// backend has performed: Full is the number of per-slot metrics customized
// from scratch (O(triangles)), Incremental the number re-customized from a
// weight epoch's dirty-cell set (O(dirty) triangle work plus one array
// clone). Served by GET /roadnet when the active backend reports them.
type MetricStats struct {
	FullCustomizations        int64 `json:"full_customizations"`
	IncrementalCustomizations int64 `json:"incremental_customizations"`
}

// MetricStatser is implemented by Routers (CCH) that separate metric
// customization from topology preprocessing and can report how much of each
// customization flavour they have run.
type MetricStatser interface {
	MetricStats() MetricStats
}

// DijkstraRouter answers point-to-point queries with a target-pruned
// Dijkstra per call — no memoisation, no expansion bound. It is the exact
// reference backend; prefer a bounded or hub-label Router on hot paths.
// Safe for concurrent use (engines are pooled per goroutine).
type DijkstraRouter struct {
	g       *Graph
	pool    sync.Pool
	settles atomic.Int64
}

// NewDijkstraRouter returns a per-query Dijkstra Router over g.
func NewDijkstraRouter(g *Graph) *DijkstraRouter {
	r := &DijkstraRouter{g: g}
	r.pool.New = func() any { return NewSSSP(g) }
	return r
}

// Travel implements Router.
func (r *DijkstraRouter) Travel(from, to NodeID, t float64) float64 {
	e := r.pool.Get().(*SSSP)
	s0 := e.Settles()
	d := e.Distance(from, to, t)
	r.settles.Add(int64(e.Settles() - s0))
	r.pool.Put(e)
	return d
}

// TravelMany implements ManyRouter: one multi-target Dijkstra expansion that
// terminates as soon as the last outstanding target settles. Distances are
// bitwise identical to per-target Travel calls (settle order does not affect
// a Dijkstra distance table).
func (r *DijkstraRouter) TravelMany(from NodeID, targets []NodeID, t float64) []float64 {
	e := r.pool.Get().(*SSSP)
	s0 := e.Settles()
	out := e.DistanceMany(from, targets, t, make([]float64, len(targets)))
	r.settles.Add(int64(e.Settles() - s0))
	r.pool.Put(e)
	return out
}

// Settles reports the cumulative node settles across every search this
// router has run — the work measure the batched-vs-per-pair construction
// bench compares.
func (r *DijkstraRouter) Settles() int64 { return r.settles.Load() }

// RouterKind implements Kinded.
func (r *DijkstraRouter) RouterKind() string { return "dijkstra" }

// NewBoundedRouter returns the bounded single-source backend: one Dijkstra
// expansion per (source, slot) capped at boundSec seconds of travel,
// memoised as a dense row (this is the DistCache the pipeline has always
// used — targets beyond the bound report +Inf). Not safe for concurrent
// use; build one per goroutine or zone shard.
func NewBoundedRouter(g *Graph, boundSec float64) *DistCache {
	return NewDistCache(g, boundSec)
}

// lruKey identifies one memoised point-to-point query. Weights are static
// within an hourly slot, so the slot — not the departure time — keys the
// entry.
type lruKey struct {
	from, to NodeID
	slot     int32
}

// LRURouter decorates any Router with a bounded point-to-point memo table
// (least-recently-used eviction). It suits backends whose per-query cost is
// high and whose query distribution is skewed — e.g. wrapping a hub-label
// index queried repeatedly for the same vehicle/restaurant pairs within a
// window. Safe for concurrent use; the inner Router is only ever invoked
// under the decorator's lock, so it need not be concurrency-safe itself.
type LRURouter struct {
	inner Router
	cap   int

	mu           sync.Mutex
	ll           *list.List // front = most recently used
	byKey        map[lruKey]*list.Element
	hits, misses int64
}

// lruEntry is one resident cache line.
type lruEntry struct {
	key lruKey
	d   float64
}

// NewLRURouter wraps inner with an LRU memo of at most capacity entries
// (minimum 1).
func NewLRURouter(inner Router, capacity int) *LRURouter {
	if capacity < 1 {
		capacity = 1
	}
	return &LRURouter{
		inner: inner,
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[lruKey]*list.Element, capacity),
	}
}

// Travel implements Router.
func (r *LRURouter) Travel(from, to NodeID, t float64) float64 {
	key := lruKey{from: from, to: to, slot: int32(Slot(t))}
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.byKey[key]; ok {
		r.hits++
		r.ll.MoveToFront(el)
		return el.Value.(*lruEntry).d
	}
	r.misses++
	d := r.inner.Travel(from, to, t)
	el := r.ll.PushFront(&lruEntry{key: key, d: d})
	r.byKey[key] = el
	if r.ll.Len() > r.cap {
		old := r.ll.Back()
		r.ll.Remove(old)
		delete(r.byKey, old.Value.(*lruEntry).key)
	}
	return d
}

// RouterKind implements Kinded.
func (r *LRURouter) RouterKind() string { return "lru" }

// Stats reports cache hits and misses since construction (or the last Reset).
func (r *LRURouter) Stats() (hits, misses int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// Len reports the resident entry count.
func (r *LRURouter) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ll.Len()
}

// Reset implements Resettable: drops every memoised entry and the
// counters, and forwards the reset to the inner Router when it memoises
// state of its own (so slot-boundary resets bound memory all the way down).
func (r *LRURouter) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ll.Init()
	r.byKey = make(map[lruKey]*list.Element, r.cap)
	r.hits, r.misses = 0, 0
	if in, ok := r.inner.(Resettable); ok {
		in.Reset()
	}
}

// Interface conformance.
var (
	_ Router     = SPFunc(nil)
	_ Router     = (*DijkstraRouter)(nil)
	_ Router     = (*DistCache)(nil)
	_ Router     = (*LRURouter)(nil)
	_ Resettable = (*DistCache)(nil)
	_ Resettable = (*LRURouter)(nil)
	_ ManyRouter = (*DijkstraRouter)(nil)
	_ ManyRouter = (*DistCache)(nil)
	_ ManyRouter = (*SwapRouter)(nil)
)
