package roadnet

import (
	"container/list"
	"sync"
)

// Router is the unified shortest-path substrate of the assignment pipeline:
// Travel returns the quickest travel time in seconds from -> to departing at
// time t (seconds since midnight), or +Inf when `to` is unreachable (or
// beyond a backend's expansion bound).
//
// Every pipeline stage, the simulator and the online engine consume their
// distance oracle through this interface, so backends — per-query Dijkstra,
// bounded single-source expansion with row memoisation, hub labels
// (spindex.Index), or a caching decorator — are swappable via a single
// option without touching stage code.
//
// Concurrency is backend-specific: NewDijkstraRouter and NewLRURouter are
// safe for concurrent use, a bounded router (DistCache) is not — the engine
// therefore builds one Router per zone shard, and the simulator drives one
// from a single goroutine. Check the constructor's documentation before
// sharing a Router across goroutines.
type Router interface {
	Travel(from, to NodeID, t float64) float64
}

// Travel implements Router, making every shortest-path closure a Router.
func (f SPFunc) Travel(from, to NodeID, t float64) float64 { return f(from, to, t) }

// Resettable is implemented by Routers whose memoised state can be dropped
// (the simulator and engine call it at hourly slot boundaries to bound
// memory; rows keyed by slot never go stale, so this is optional).
type Resettable interface {
	Reset()
}

// Kinded is implemented by Routers that name their backend for telemetry:
// the engine's sampled router-query histograms label series by this kind
// (falling back to the dynamic type name). Purely observational.
type Kinded interface {
	RouterKind() string
}

// DijkstraRouter answers point-to-point queries with a target-pruned
// Dijkstra per call — no memoisation, no expansion bound. It is the exact
// reference backend; prefer a bounded or hub-label Router on hot paths.
// Safe for concurrent use (engines are pooled per goroutine).
type DijkstraRouter struct {
	g    *Graph
	pool sync.Pool
}

// NewDijkstraRouter returns a per-query Dijkstra Router over g.
func NewDijkstraRouter(g *Graph) *DijkstraRouter {
	r := &DijkstraRouter{g: g}
	r.pool.New = func() any { return NewSSSP(g) }
	return r
}

// Travel implements Router.
func (r *DijkstraRouter) Travel(from, to NodeID, t float64) float64 {
	e := r.pool.Get().(*SSSP)
	d := e.Distance(from, to, t)
	r.pool.Put(e)
	return d
}

// RouterKind implements Kinded.
func (r *DijkstraRouter) RouterKind() string { return "dijkstra" }

// NewBoundedRouter returns the bounded single-source backend: one Dijkstra
// expansion per (source, slot) capped at boundSec seconds of travel,
// memoised as a dense row (this is the DistCache the pipeline has always
// used — targets beyond the bound report +Inf). Not safe for concurrent
// use; build one per goroutine or zone shard.
func NewBoundedRouter(g *Graph, boundSec float64) *DistCache {
	return NewDistCache(g, boundSec)
}

// lruKey identifies one memoised point-to-point query. Weights are static
// within an hourly slot, so the slot — not the departure time — keys the
// entry.
type lruKey struct {
	from, to NodeID
	slot     int32
}

// LRURouter decorates any Router with a bounded point-to-point memo table
// (least-recently-used eviction). It suits backends whose per-query cost is
// high and whose query distribution is skewed — e.g. wrapping a hub-label
// index queried repeatedly for the same vehicle/restaurant pairs within a
// window. Safe for concurrent use; the inner Router is only ever invoked
// under the decorator's lock, so it need not be concurrency-safe itself.
type LRURouter struct {
	inner Router
	cap   int

	mu           sync.Mutex
	ll           *list.List // front = most recently used
	byKey        map[lruKey]*list.Element
	hits, misses int64
}

// lruEntry is one resident cache line.
type lruEntry struct {
	key lruKey
	d   float64
}

// NewLRURouter wraps inner with an LRU memo of at most capacity entries
// (minimum 1).
func NewLRURouter(inner Router, capacity int) *LRURouter {
	if capacity < 1 {
		capacity = 1
	}
	return &LRURouter{
		inner: inner,
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[lruKey]*list.Element, capacity),
	}
}

// Travel implements Router.
func (r *LRURouter) Travel(from, to NodeID, t float64) float64 {
	key := lruKey{from: from, to: to, slot: int32(Slot(t))}
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.byKey[key]; ok {
		r.hits++
		r.ll.MoveToFront(el)
		return el.Value.(*lruEntry).d
	}
	r.misses++
	d := r.inner.Travel(from, to, t)
	el := r.ll.PushFront(&lruEntry{key: key, d: d})
	r.byKey[key] = el
	if r.ll.Len() > r.cap {
		old := r.ll.Back()
		r.ll.Remove(old)
		delete(r.byKey, old.Value.(*lruEntry).key)
	}
	return d
}

// RouterKind implements Kinded.
func (r *LRURouter) RouterKind() string { return "lru" }

// Stats reports cache hits and misses since construction (or the last Reset).
func (r *LRURouter) Stats() (hits, misses int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// Len reports the resident entry count.
func (r *LRURouter) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ll.Len()
}

// Reset implements Resettable: drops every memoised entry and the
// counters, and forwards the reset to the inner Router when it memoises
// state of its own (so slot-boundary resets bound memory all the way down).
func (r *LRURouter) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ll.Init()
	r.byKey = make(map[lruKey]*list.Element, r.cap)
	r.hits, r.misses = 0, 0
	if in, ok := r.inner.(Resettable); ok {
		in.Reset()
	}
}

// Interface conformance.
var (
	_ Router     = SPFunc(nil)
	_ Router     = (*DijkstraRouter)(nil)
	_ Router     = (*DistCache)(nil)
	_ Router     = (*LRURouter)(nil)
	_ Resettable = (*DistCache)(nil)
	_ Resettable = (*LRURouter)(nil)
)
