package roadnet

import (
	"sync"
	"sync/atomic"
)

// Snapshot is one immutable published view of the dynamic road network: a
// reweighted Graph stamped with a monotonically increasing epoch. Snapshots
// are how the live traffic plane reaches the assignment plane — the GPS
// speed learner periodically materialises its estimates into a graph, the
// engine wraps it in a Snapshot, and every zone shard's SwapRouter hot-swaps
// onto it without ever blocking an in-flight query.
type Snapshot struct {
	// Epoch versions the weight set; 0 is the static base graph.
	Epoch uint64
	// Graph carries the epoch's weights (topology identical to the base).
	Graph *Graph
	// LearnedEdges / LearnedCells count the (edge) and (edge, slot) cells
	// the epoch overrides — provenance for /roadnet metrics.
	LearnedEdges, LearnedCells int
	// PublishedAt is the simulation clock of the publish.
	PublishedAt float64
	// Patched reports the epoch was produced by PatchReweighted off the
	// previous one (sharing untouched rows) rather than a full rebuild;
	// DirtyCells counts the (edge, slot) cells the patch rewrote.
	Patched    bool
	DirtyCells int
}

// swapState pairs a snapshot with the Router built over its graph; the pair
// is immutable once stored, so one atomic pointer load yields a consistent
// (graph, router) view.
type swapState struct {
	snap  Snapshot
	inner Router
}

// SwapRouter is the epoch-versioned Router of the dynamic road network. The
// query path is lock-free: Travel performs one atomic pointer load and
// delegates to the inner Router built for the current epoch; Publish builds
// the next epoch's inner Router off to the side and installs it with one
// atomic store. Queries racing a publish see either the old epoch or the
// new one — never a torn state — and the old inner Router stays valid for
// callers that pinned it with Acquire.
//
// Concurrency: Travel/Acquire/Epoch are safe from any goroutine. The inner
// Router's own concurrency contract still applies to whoever queries it —
// the engine keeps one SwapRouter per zone shard so a non-concurrent
// backend (DistCache) is only ever driven by one goroutine at a time.
type SwapRouter struct {
	newRouter func(*Graph) Router
	cur       atomic.Pointer[swapState]
	pubMu     sync.Mutex // serialises Publish bookkeeping
}

// NewSwapRouter returns a SwapRouter serving epoch 0 over the base graph,
// with inner Routers built by newRouter (one per published epoch).
func NewSwapRouter(base *Graph, newRouter func(*Graph) Router) *SwapRouter {
	r := &SwapRouter{newRouter: newRouter}
	r.cur.Store(&swapState{
		snap:  Snapshot{Epoch: 0, Graph: base},
		inner: newRouter(base),
	})
	return r
}

// Travel implements Router: one atomic load, then the current epoch's
// backend.
func (r *SwapRouter) Travel(from, to NodeID, t float64) float64 {
	return r.cur.Load().inner.Travel(from, to, t)
}

// TravelMany implements ManyRouter against the current epoch's backend (one
// atomic load pins the whole batch to one epoch; per-pair fallback when the
// inner backend has no batched path).
func (r *SwapRouter) TravelMany(from NodeID, targets []NodeID, t float64) []float64 {
	return TravelMany(r.cur.Load().inner, from, targets, t)
}

// Acquire pins the current epoch: the returned snapshot and Router stay
// consistent with each other for as long as the caller holds them, even
// across a concurrent Publish. Assignment rounds acquire once and route the
// whole round through the pinned pair — zero per-query overhead and no
// mixed-epoch rounds.
func (r *SwapRouter) Acquire() (Snapshot, Router) {
	st := r.cur.Load()
	return st.snap, st.inner
}

// Publish installs a new epoch: it builds the inner Router for snap.Graph
// (off the query path) and atomically swaps it in. Epochs are strictly
// monotonic — a snapshot whose epoch does not exceed the current one is
// rejected (returns false), which makes concurrent publishers safe: the
// freshest epoch wins and stale rebuilds are dropped.
func (r *SwapRouter) Publish(snap Snapshot) bool {
	if snap.Graph == nil {
		return false
	}
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	if snap.Epoch <= r.cur.Load().snap.Epoch {
		return false
	}
	r.cur.Store(&swapState{snap: snap, inner: r.newRouter(snap.Graph)})
	return true
}

// Epoch returns the currently served epoch.
func (r *SwapRouter) Epoch() uint64 { return r.cur.Load().snap.Epoch }

// Snapshot returns the currently served snapshot.
func (r *SwapRouter) Snapshot() Snapshot { return r.cur.Load().snap }

// Reset implements Resettable: forwards to the current epoch's backend when
// it memoises state (slot-boundary resets reach through the swap layer).
func (r *SwapRouter) Reset() {
	if in, ok := r.cur.Load().inner.(Resettable); ok {
		in.Reset()
	}
}

// Interface conformance.
var (
	_ Router     = (*SwapRouter)(nil)
	_ Resettable = (*SwapRouter)(nil)
)
