package roadnet

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geo"
)

func TestSwapRouterServesEpochs(t *testing.T) {
	g := weightsTestGraph(t)
	r := NewSwapRouter(g, func(gr *Graph) Router { return NewDijkstraRouter(gr) })
	if r.Epoch() != 0 {
		t.Fatalf("fresh router epoch %d", r.Epoch())
	}
	tAt := 6.5 * 3600
	base := r.Travel(0, 1, tAt)
	if base != ShortestPath(g, 0, 1, tAt) {
		t.Fatalf("epoch 0 diverges from base graph: %v", base)
	}

	w := NewSlotWeights()
	if err := w.Set(0, 1, 6, 9000); err != nil {
		t.Fatal(err)
	}
	ng := g.Reweighted(w)
	if !r.Publish(Snapshot{Epoch: 1, Graph: ng, LearnedCells: w.Cells()}) {
		t.Fatal("publish epoch 1 rejected")
	}
	if r.Epoch() != 1 {
		t.Fatalf("epoch after publish %d", r.Epoch())
	}
	after := r.Travel(0, 1, tAt)
	if after <= base {
		t.Fatalf("swap invisible: %v <= %v", after, base)
	}

	// Epoch monotonicity: stale and duplicate epochs are rejected.
	if r.Publish(Snapshot{Epoch: 1, Graph: g}) {
		t.Fatal("duplicate epoch accepted")
	}
	if r.Publish(Snapshot{Epoch: 0, Graph: g}) {
		t.Fatal("stale epoch accepted")
	}
	if r.Publish(Snapshot{Epoch: 7, Graph: nil}) {
		t.Fatal("nil graph accepted")
	}
	if r.Epoch() != 1 {
		t.Fatalf("epoch moved on rejected publish: %d", r.Epoch())
	}
}

func TestSwapRouterAcquirePinsEpoch(t *testing.T) {
	g := weightsTestGraph(t)
	r := NewSwapRouter(g, func(gr *Graph) Router { return NewDijkstraRouter(gr) })
	snap, pinned := r.Acquire()
	if snap.Epoch != 0 || snap.Graph != g {
		t.Fatalf("acquire: epoch %d graph %p", snap.Epoch, snap.Graph)
	}
	tAt := 6.5 * 3600
	before := pinned.Travel(0, 1, tAt)

	w := NewSlotWeights()
	if err := w.Set(0, 1, 6, 9000); err != nil {
		t.Fatal(err)
	}
	r.Publish(Snapshot{Epoch: 1, Graph: g.Reweighted(w)})

	// The pinned router still answers from the old epoch, the SwapRouter
	// from the new one.
	if got := pinned.Travel(0, 1, tAt); got != before {
		t.Fatalf("pinned router changed under a publish: %v want %v", got, before)
	}
	if got := r.Travel(0, 1, tAt); got <= before {
		t.Fatalf("live router missed the publish: %v", got)
	}
}

// TestSwapRouterConcurrentPublish hammers the query path from several
// goroutines while epochs are published concurrently — run under -race this
// is the lock-free-hot-path proof. Every observed distance must equal the
// base or a published epoch's distance, never a torn intermediate.
func TestSwapRouterConcurrentPublish(t *testing.T) {
	g := weightsTestGraph(t)
	r := NewSwapRouter(g, func(gr *Graph) Router { return NewDijkstraRouter(gr) })
	tAt := 6.5 * 3600
	valid := map[float64]bool{r.Travel(0, 1, tAt): true}
	graphs := []*Graph{}
	for i := 0; i < 8; i++ {
		w := NewSlotWeights()
		if err := w.Set(0, 1, 6, 1000*float64(i+1)); err != nil {
			t.Fatal(err)
		}
		ng := g.Reweighted(w)
		graphs = append(graphs, ng)
		valid[ShortestPath(ng, 0, 1, tAt)] = true
	}

	var wg sync.WaitGroup
	var bad atomic.Int64
	stop := make(chan struct{})
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := r.Travel(0, 1, tAt)
				if math.IsNaN(d) || !valid[d] {
					bad.Add(1)
					return
				}
			}
		}()
	}
	for i, ng := range graphs {
		r.Publish(Snapshot{Epoch: uint64(i + 1), Graph: ng})
	}
	close(stop)
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatal("queries observed a distance from no published epoch")
	}
	if r.Epoch() != uint64(len(graphs)) {
		t.Fatalf("final epoch %d want %d", r.Epoch(), len(graphs))
	}
}

// TestLRURouterConcurrentReset drives Travel and Reset concurrently; under
// -race this pins the LRU decorator's concurrency contract.
func TestLRURouterConcurrentReset(t *testing.T) {
	g := weightsTestGraph(t)
	r := NewLRURouter(NewDijkstraRouter(g), 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from := NodeID((q + i) % g.NumNodes())
				to := NodeID(i % g.NumNodes())
				if d := r.Travel(from, to, float64(i%86400)); math.IsNaN(d) {
					t.Error("NaN distance")
					return
				}
			}
		}(q)
	}
	for i := 0; i < 200; i++ {
		r.Reset()
		_ = r.Len()
		_, _ = r.Stats()
	}
	close(stop)
	wg.Wait()
}

// BenchmarkRouterSwap quantifies the snapshot layer's query-path cost: the
// same bounded backend queried directly, through a per-query atomic load
// (SwapRouter.Travel), and through a round-pinned Acquire. The acceptance
// bar is "≤ a few ns": Travel adds one atomic pointer load, Acquire removes
// even that from the per-query path.
func BenchmarkRouterSwap(b *testing.B) {
	bld := NewBuilder()
	const n = 256
	for i := 0; i < n; i++ {
		bld.AddNode(weightsBenchPoint(i))
	}
	for i := 0; i < n; i++ {
		bld.AddEdge(NodeID(i), NodeID((i+1)%n), 500, 60, 0)
		bld.AddEdge(NodeID((i+1)%n), NodeID(i), 500, 60, 0)
	}
	g := bld.MustBuild()
	newInner := func(gr *Graph) Router { return NewBoundedRouter(gr, 7200) }

	b.Run("direct", func(b *testing.B) {
		r := newInner(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Travel(0, NodeID(i%n), 65000)
		}
	})
	b.Run("swap-travel", func(b *testing.B) {
		r := NewSwapRouter(g, newInner)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Travel(0, NodeID(i%n), 65000)
		}
	})
	b.Run("swap-acquire", func(b *testing.B) {
		r := NewSwapRouter(g, newInner)
		_, pinned := r.Acquire()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pinned.Travel(0, NodeID(i%n), 65000)
		}
	})
}

func weightsBenchPoint(i int) geo.Point {
	return geo.Point{Lat: 12.90 + float64(i/16)*0.002, Lon: 77.50 + float64(i%16)*0.002}
}
