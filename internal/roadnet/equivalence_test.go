package roadnet_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/spindex"
	"repro/internal/workload"
)

// intGraph builds a random strongly connected graph whose every (edge, slot)
// weight is a small integer: BaseSec in 1..64 and slot multipliers in
// {1,2,3}, so all shortest-path sums are exact in float64 AND in float32
// (well under 2^24). On such weights every backend — label-setting,
// hierarchy, hub labels — must produce bitwise-identical distances, because
// no representation or association difference can perturb exact integer
// arithmetic.
func intGraph(rng *rand.Rand, n, extra int) *roadnet.Graph {
	b := roadnet.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(geo.Point{Lat: rng.Float64(), Lon: rng.Float64()})
	}
	var mult [roadnet.SlotsPerDay]float64
	for s := range mult {
		mult[s] = float64(1 + (s % 3))
	}
	z := b.AddZone(mult)
	zoneOf := func(i int) uint32 {
		if i%2 == 0 {
			return z
		}
		return 0
	}
	for i := 0; i < n; i++ {
		w := float64(1 + rng.Intn(64))
		b.AddEdge(roadnet.NodeID(i), roadnet.NodeID((i+1)%n), w*10, w, zoneOf(i))
	}
	for i := 0; i < extra; i++ {
		u := roadnet.NodeID(rng.Intn(n))
		v := roadnet.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		w := float64(1 + rng.Intn(64))
		b.AddEdge(u, v, w*10, w, zoneOf(i))
	}
	return b.MustBuild()
}

// allBackends instantiates every shortest-path backend over g. The Dijkstra
// router is the reference oracle.
func allBackends(g *roadnet.Graph) []struct {
	name string
	rt   roadnet.Router
} {
	return []struct {
		name string
		rt   roadnet.Router
	}{
		{"dijkstra", roadnet.NewDijkstraRouter(g)},
		{"bounded", roadnet.NewBoundedRouter(g, math.Inf(1))},
		{"hublabel", spindex.New(g)},
		{"cch", roadnet.NewCCHFactory().NewRouter(g)},
	}
}

// TestBackendsBitwiseEqualOnIntegerWeights draws random (source, target-set,
// slot) queries on integer-weight graphs and requires every backend's Travel
// AND TravelMany to return bitwise-identical distances to the Dijkstra
// oracle — the strongest cross-backend contract float arithmetic admits.
func TestBackendsBitwiseEqualOnIntegerWeights(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const n = 70
			g := intGraph(rng, n, 220)
			backends := allBackends(g)
			oracle := backends[0].rt
			for trial := 0; trial < 120; trial++ {
				from := roadnet.NodeID(rng.Intn(n))
				at := float64(rng.Intn(roadnet.SlotsPerDay)) * 3600
				targets := make([]roadnet.NodeID, 1+rng.Intn(8))
				for i := range targets {
					targets[i] = roadnet.NodeID(rng.Intn(n))
				}
				want := roadnet.TravelMany(oracle, from, targets, at)
				for _, be := range backends {
					many := roadnet.TravelMany(be.rt, from, targets, at)
					for i, to := range targets {
						if one := be.rt.Travel(from, to, at); one != want[i] {
							t.Fatalf("%s.Travel(%d->%d, slot %v) = %v, dijkstra = %v",
								be.name, from, to, at/3600, one, want[i])
						}
						if many[i] != want[i] {
							t.Fatalf("%s.TravelMany[%d] (%d->%d, slot %v) = %v, dijkstra = %v",
								be.name, i, from, to, at/3600, many[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestBackendsAgreeOnCityGraphs runs the same property over the real CityA /
// CityB preset graphs. Real weights are arbitrary floats, so hierarchy and
// hub-label backends may differ from label-setting in the last ulps (they
// associate the min-plus sums differently; hub labels additionally store
// float32 label distances) — those two get a tolerance, while the
// SSSP-family backends and every backend's own TravelMany stay bitwise.
func TestBackendsAgreeOnCityGraphs(t *testing.T) {
	tol := map[string]float64{
		"dijkstra": 0,
		"bounded":  0,
		"cch":      1e-9,
		"hublabel": 1e-4, // float32 labels
	}
	for _, cityName := range []string{"CityA", "CityB"} {
		t.Run(cityName, func(t *testing.T) {
			city := workload.MustPreset(cityName, workload.DefaultScale, 1)
			g := city.G
			n := g.NumNodes()
			rng := rand.New(rand.NewSource(42))
			backends := allBackends(g)
			oracle := backends[0].rt
			for trial := 0; trial < 60; trial++ {
				from := roadnet.NodeID(rng.Intn(n))
				at := float64(rng.Intn(roadnet.SlotsPerDay)) * 3600
				targets := make([]roadnet.NodeID, 1+rng.Intn(10))
				for i := range targets {
					targets[i] = roadnet.NodeID(rng.Intn(n))
				}
				want := roadnet.TravelMany(oracle, from, targets, at)
				for _, be := range backends {
					many := roadnet.TravelMany(be.rt, from, targets, at)
					for i, to := range targets {
						one := be.rt.Travel(from, to, at)
						if one != many[i] {
							t.Fatalf("%s: TravelMany[%d] = %v but Travel = %v (%d->%d)",
								be.name, i, many[i], one, from, to)
						}
						w := want[i]
						if math.IsInf(w, 1) && math.IsInf(one, 1) {
							continue
						}
						if diff := math.Abs(one - w); diff > tol[be.name]*(1+w) {
							t.Fatalf("%s.Travel(%d->%d, slot %v) = %v, dijkstra = %v (diff %v)",
								be.name, from, to, at/3600, one, w, diff)
						}
					}
				}
			}
		})
	}
}
