// Command citygen generates a synthetic city and writes it (with one day of
// orders and the fleet's shift plan) as JSON, for inspection or for feeding
// external tooling.
//
// Examples:
//
//	citygen -city CityA -o cityA.json
//	citygen -city CityB -scale 0.05 -pretty | jq '.Stats'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	foodmatch "repro"
)

// dump is the serialised city bundle.
type dump struct {
	Name  string
	Stats stats
	Nodes []node
	Edges []edge
	// Restaurants are node ids; Orders one full day; Fleet the shift plan.
	Restaurants []int32
	Orders      []order
	Fleet       []vehicle
}

type stats struct {
	Nodes, Edges, Restaurants, Vehicles, Orders int
	AvgPrepMin                                  float64
}

type node struct {
	ID       int32
	Lat, Lon float64
}

type edge struct {
	From, To int32
	LenM     float32
	BaseSec  float32
}

type order struct {
	ID         int64
	Restaurant int32
	Customer   int32
	PlacedAt   float64
	Items      int
	PrepSec    float64
}

type vehicle struct {
	ID         int32
	Node       int32
	ActiveFrom float64
	ActiveTo   float64
}

func main() {
	var (
		cityName = flag.String("city", "CityB", "city preset")
		scale    = flag.Float64("scale", foodmatch.DefaultScale, "workload scale")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		out      = flag.String("o", "", "output file (default stdout)")
		pretty   = flag.Bool("pretty", false, "indent JSON")
	)
	flag.Parse()

	city, err := foodmatch.LoadCity(*cityName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	orders := foodmatch.OrderStream(city, *seed)
	fleet := city.Fleet(1.0, 3, *seed)

	d := dump{Name: *cityName}
	g := city.G
	for i := 0; i < g.NumNodes(); i++ {
		pt := g.Point(foodmatch.NodeID(i))
		d.Nodes = append(d.Nodes, node{ID: int32(i), Lat: pt.Lat, Lon: pt.Lon})
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, e := range g.OutEdges(foodmatch.NodeID(i)) {
			d.Edges = append(d.Edges, edge{From: int32(i), To: int32(e.To), LenM: e.LenM, BaseSec: e.BaseSec})
		}
	}
	for _, r := range city.Restaurants {
		d.Restaurants = append(d.Restaurants, int32(r))
	}
	prepSum := 0.0
	for _, o := range orders {
		prepSum += o.Prep
		d.Orders = append(d.Orders, order{
			ID: int64(o.ID), Restaurant: int32(o.Restaurant), Customer: int32(o.Customer),
			PlacedAt: o.PlacedAt, Items: o.Items, PrepSec: o.Prep,
		})
	}
	for _, v := range fleet {
		d.Fleet = append(d.Fleet, vehicle{
			ID: int32(v.ID), Node: int32(v.Node), ActiveFrom: v.ActiveFrom, ActiveTo: v.ActiveTo,
		})
	}
	d.Stats = stats{
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		Restaurants: len(city.Restaurants), Vehicles: len(fleet), Orders: len(orders),
	}
	if len(orders) > 0 {
		d.Stats.AvgPrepMin = prepSum / float64(len(orders)) / 60
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	if *pretty {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(d); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "citygen:", err)
	os.Exit(1)
}
