package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	foodmatch "repro"
)

// testHarness builds one engine+server pair for the validation and fuzz
// tests (city generation dominates otherwise).
type testHarness struct {
	city    *foodmatch.City
	eng     *foodmatch.Engine
	learner *foodmatch.StreamLearner
	srv     *Server
}

var harnessOnce sync.Once
var harness *testHarness

func getHarness(t testing.TB) *testHarness {
	harnessOnce.Do(func() {
		city, err := foodmatch.LoadCity("CityA", foodmatch.DefaultScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := foodmatch.ExperimentConfig("CityA", foodmatch.DefaultScale)
		fleet := city.Fleet(0.5, cfg.MaxO, 1)
		learner := foodmatch.NewStreamLearner(city.G, foodmatch.StreamLearnerOptions{ChunkSize: 4})
		eng, err := foodmatch.NewEngine(city.G, fleet, foodmatch.EngineConfig{
			Pipeline: cfg,
			Shards:   2,
			Learner:  learner,
		})
		if err != nil {
			t.Fatal(err)
		}
		harness = &testHarness{
			city: city, eng: eng, learner: learner,
			srv: NewServer(eng, city, ServerOptions{Learner: learner, Scenario: "rain:1.3"}),
		}
	})
	return harness
}

func do(t testing.TB, h *testHarness, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.srv.ServeHTTP(rr, req)
	return rr
}

// TestOrderValidation pins the satellite fix: NaN/Inf and out-of-bounds
// payloads get 400 instead of poisoning the learner and FoodGraph.
func TestOrderValidation(t *testing.T) {
	h := getHarness(t)
	bad := []string{
		`{"restaurant_node":1,"customer_node":2,"prep_sec":NaN}`,   // invalid JSON too
		`{"restaurant_node":1,"customer_node":2,"prep_sec":1e999}`, // overflows to +Inf... rejected by decoder
		`{"restaurant":{"lat":91,"lon":77},"customer_node":2}`,     // lat out of range
		`{"restaurant":{"lat":12.9,"lon":181},"customer_node":2}`,  // lon out of range
		`{"restaurant_node":1,"customer_node":2,"placed_at":9e99}`, // beyond horizon
		`{"restaurant_node":1,"customer_node":2,"prep_sec":1e9}`,   // prep ceiling
		`{"restaurant_node":1,"customer_node":2,"items":-3}`,       // negative items
		`{"restaurant_node":1,"customer_node":2,"items":5000}`,     // absurd items
		`{"restaurant_node":-1,"customer_node":2}`,                 // node id
		`{"restaurant_node":99999999999,"customer_node":2}`,        // node id overflow
		`{"customer_node":2}`, // missing restaurant
	}
	for _, body := range bad {
		if rr := do(t, h, "POST", "/orders", body); rr.Code != http.StatusBadRequest {
			t.Errorf("POST /orders %s -> %d, want 400", body, rr.Code)
		}
	}
	ok := fmt.Sprintf(`{"restaurant_node":%d,"customer_node":2,"items":2,"prep_sec":480}`,
		h.city.Restaurants[0])
	if rr := do(t, h, "POST", "/orders", ok); rr.Code != http.StatusAccepted {
		t.Fatalf("valid order -> %d: %s", rr.Code, rr.Body)
	}
}

func TestPingValidation(t *testing.T) {
	h := getHarness(t)
	vid := h.eng.VehicleIDs()[0]
	path := fmt.Sprintf("/vehicles/%d/ping", vid)
	bad := []string{
		`{"at":{"lat":1e999,"lon":77.5}}`, // decoder rejects overflow
		`{"at":{"lat":-95,"lon":77.5}}`,   // out of envelope
		`{"at":{"lat":12.9,"lon":-200}}`,  // out of envelope
		`{"active_from":1e999}`,           // decoder rejects overflow
		`{not json`,                       // malformed
	}
	for _, body := range bad {
		if rr := do(t, h, "POST", path, body); rr.Code != http.StatusBadRequest {
			t.Errorf("POST %s %s -> %d, want 400", path, body, rr.Code)
		}
	}
	pt := h.city.G.Point(3)
	good := fmt.Sprintf(`{"at":{"lat":%f,"lon":%f}}`, pt.Lat, pt.Lon)
	before := h.learner.Stats().Pings
	if rr := do(t, h, "POST", path, good); rr.Code != http.StatusAccepted {
		t.Fatalf("valid coordinate ping -> %d: %s", rr.Code, rr.Body)
	}
	if after := h.learner.Stats().Pings; after != before+1 {
		t.Fatalf("raw ping did not reach the learner (%d -> %d)", before, after)
	}
	// Shift update with explicit values works; omitted fields stay.
	if rr := do(t, h, "POST", path, `{"active_from":64800,"active_to":79200}`); rr.Code != http.StatusAccepted {
		t.Fatalf("shift update -> %d", rr.Code)
	}
}

func TestRoadnetEndpoint(t *testing.T) {
	h := getHarness(t)
	rr := do(t, h, "GET", "/roadnet", "")
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /roadnet -> %d", rr.Code)
	}
	var resp roadnetResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /roadnet payload %s: %v", rr.Body, err)
	}
	if !resp.Dynamic {
		t.Fatal("/roadnet reports static despite an attached learner")
	}
	if resp.Scenario != "rain:1.3" {
		t.Fatalf("/roadnet scenario %q", resp.Scenario)
	}
	if resp.Learner == nil {
		t.Fatal("/roadnet carries no learner stats")
	}
	if resp.Slot < 0 || resp.Slot >= 24 {
		t.Fatalf("/roadnet slot %d", resp.Slot)
	}
}
