package main

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// acceptable is the full set of statuses a hostile payload may produce:
// accepted (it happened to be valid), rejected, or shed under backpressure.
// Anything else — or a panic — is a bug.
func acceptable(code int) bool {
	switch code {
	case http.StatusAccepted, http.StatusBadRequest, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// FuzzOrderDecode throws arbitrary bytes at POST /orders. The decoder and
// validation layer must map every input to a clean HTTP status — never a
// panic, never an order with non-finite fields reaching the engine.
func FuzzOrderDecode(f *testing.F) {
	f.Add(`{"restaurant_node":1,"customer_node":2,"items":2,"prep_sec":480}`)
	f.Add(`{"restaurant":{"lat":12.9,"lon":77.5},"customer":{"lat":12.91,"lon":77.51}}`)
	f.Add(`{"restaurant_node":-1}`)
	f.Add(`{"restaurant_node":1,"customer_node":2,"placed_at":-1e308}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`[1,2,3]`)
	h := getHarness(f)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/orders", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.srv.ServeHTTP(rr, req)
		if !acceptable(rr.Code) {
			t.Fatalf("POST /orders %q -> %d", body, rr.Code)
		}
	})
}

// FuzzPingDecode throws arbitrary bytes at the ping endpoint (and fuzzes
// the vehicle id path segment too). With a learner attached this also
// fuzzes the raw-ping admission gate: garbage must never reach the HMM
// matcher as NaN coordinates.
func FuzzPingDecode(f *testing.F) {
	f.Add("1", `{"node":3}`)
	f.Add("1", `{"at":{"lat":12.9,"lon":77.5}}`)
	f.Add("1", `{"active_from":64800}`)
	f.Add("999999", `{"node":3}`)
	f.Add("x", `{}`)
	f.Add("-1", `{"at":{"lat":1e999,"lon":0}}`)
	h := getHarness(f)
	f.Fuzz(func(t *testing.T, id, body string) {
		if id == "" {
			t.Skip()
		}
		// Escape like a real client: arbitrary bytes are legal in a path
		// segment once percent-encoded.
		req := httptest.NewRequest("POST", "/vehicles/"+url.PathEscape(id)+"/ping", strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.srv.ServeHTTP(rr, req)
		// 404/301 are the mux's own answers to ids that de-sugar the path
		// ("." and ".." segments redirect, unroutable paths 404).
		if !acceptable(rr.Code) && rr.Code != http.StatusNotFound && rr.Code != http.StatusMovedPermanently {
			t.Fatalf("POST /vehicles/%s/ping %q -> %d", id, body, rr.Code)
		}
	})
}
