package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"

	foodmatch "repro"
)

// Server exposes the online dispatch engine over HTTP/JSON:
//
//	POST /orders              place an order (node ids or lat/lon)
//	POST /vehicles/{id}/ping  vehicle location/shift update
//	GET  /assignments         NDJSON stream of decisions + round stats
//	GET  /metrics             engine metrics snapshot
//	GET  /metrics.prom        Prometheus text exposition of the obs registry
//	GET  /trace/orders        NDJSON tail of the order-lifecycle event ring
//	GET  /roadnet             dynamic road network status (epoch, slot, learner)
//	GET  /healthz             liveness
//	GET  /readyz              readiness (engine started + first round done)
//	POST /admin/checkpoint    force a durable checkpoint + WAL truncation
type Server struct {
	eng    *foodmatch.Engine
	city   *foodmatch.City
	opts   ServerOptions
	nextID atomic.Int64
	mux    *http.ServeMux
}

// ServerOptions carries the optional live-traffic wiring.
type ServerOptions struct {
	// Learner, when set, additionally receives raw lat/lon pings (the HMM
	// map-matching plane); node-snapped pings reach it through the engine.
	Learner *foodmatch.StreamLearner
	// Scenario names the true-graph perturbation the daemon was started
	// with (echoed on /roadnet).
	Scenario string
	// MaxBodyBytes caps ingestion request bodies (orders, pings); oversized
	// requests get 413. 0 = the 64 KiB default.
	MaxBodyBytes int64
	// FirstOrderID seeds the order-id allocator: the first order served is
	// FirstOrderID+1. Crash-recovery boots pass the highest order id found
	// in the checkpoint and WAL so new ids never collide with restored ones.
	FirstOrderID int64
	// Checkpoint, when set, backs POST /admin/checkpoint: write a durable
	// engine checkpoint and truncate the WAL behind it. Nil = durability
	// disabled (no -wal-dir).
	Checkpoint func() (*foodmatch.EngineCheckpoint, error)
}

// defaultMaxBody caps ingestion payloads when ServerOptions leaves
// MaxBodyBytes zero: far above any legitimate order or ping document, far
// below anything that could pressure memory.
const defaultMaxBody = 64 << 10

// NewServer wires the handlers around an engine. city provides coordinate
// snapping for lat/lon payloads (restaurants, customers, pings).
func NewServer(eng *foodmatch.Engine, city *foodmatch.City, opts ServerOptions) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBody
	}
	s := &Server{eng: eng, city: city, opts: opts, mux: http.NewServeMux()}
	s.nextID.Store(opts.FirstOrderID)
	s.mux.HandleFunc("POST /orders", s.handleOrder)
	s.mux.HandleFunc("POST /vehicles/{id}/ping", s.handlePing)
	s.mux.HandleFunc("GET /assignments", s.handleAssignments)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.prom", s.handleMetricsProm)
	s.mux.HandleFunc("GET /trace/orders", s.handleTraceOrders)
	s.mux.HandleFunc("GET /roadnet", s.handleRoadnet)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("POST /admin/checkpoint", s.handleAdminCheckpoint)
	return s
}

// decodeBody decodes a JSON request body under the MaxBodyBytes cap. It
// writes the error response itself — 413 when the cap is exceeded, 400 for
// malformed JSON — and reports whether the handler may proceed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge,
			"%s payload exceeds %d bytes", what, tooBig.Limit)
		return false
	}
	httpError(w, http.StatusBadRequest, "bad %s payload: %v", what, err)
	return false
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// latLon is an optional coordinate payload.
type latLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// orderRequest is the POST /orders payload. Locations are given either as
// road-network node ids or as coordinates snapped to the network.
type orderRequest struct {
	RestaurantNode *int64  `json:"restaurant_node,omitempty"`
	Restaurant     *latLon `json:"restaurant,omitempty"`
	CustomerNode   *int64  `json:"customer_node,omitempty"`
	Customer       *latLon `json:"customer,omitempty"`
	Items          int     `json:"items"`
	PrepSec        float64 `json:"prep_sec"`
	// PlacedAt is seconds since midnight (simulation time); omit or pass 0
	// to stamp with the engine clock at admission.
	PlacedAt float64 `json:"placed_at,omitempty"`
}

type orderResponse struct {
	Order int64 `json:"order"`
	// PlacedAt echoes the request; 0 means the engine stamps the order
	// with its clock at admission (the next window).
	PlacedAt float64 `json:"placed_at"`
}

// finite reports whether every argument is a finite float — the admission
// gate that keeps NaN/Inf payloads out of the learner, the FoodGraph and
// the engine's order pool.
func finite(fs ...float64) bool {
	for _, f := range fs {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}

// checkLatLon validates a coordinate payload: finite and inside the WGS-84
// envelope. (The nearest-node snap would silently fold garbage coordinates
// onto an arbitrary road node otherwise — or poison the HMM matcher.)
func checkLatLon(pt *latLon) error {
	if !finite(pt.Lat, pt.Lon) {
		return errors.New("coordinates must be finite")
	}
	if pt.Lat < -90 || pt.Lat > 90 || pt.Lon < -180 || pt.Lon > 180 {
		return fmt.Errorf("coordinates (%g, %g) outside lat [-90,90] / lon [-180,180]", pt.Lat, pt.Lon)
	}
	return nil
}

func (s *Server) resolveNode(node *int64, pt *latLon) (foodmatch.NodeID, error) {
	switch {
	case node != nil:
		// Bounds-check at int64 width: a blind NodeID(*node) conversion
		// would let huge ids wrap into valid-but-wrong nodes.
		if *node < 0 || *node >= int64(s.city.G.NumNodes()) {
			return 0, fmt.Errorf("node %d outside the road network [0, %d)", *node, s.city.G.NumNodes())
		}
		return foodmatch.NodeID(*node), nil
	case pt != nil:
		if err := checkLatLon(pt); err != nil {
			return 0, err
		}
		return s.city.NearestNode(foodmatch.Point{Lat: pt.Lat, Lon: pt.Lon}), nil
	default:
		return 0, errors.New("need a node id or a lat/lon")
	}
}

func (s *Server) handleOrder(w http.ResponseWriter, r *http.Request) {
	var req orderRequest
	if !s.decodeBody(w, r, "order", &req) {
		return
	}
	rest, err := s.resolveNode(req.RestaurantNode, req.Restaurant)
	if err != nil {
		httpError(w, http.StatusBadRequest, "restaurant: %v", err)
		return
	}
	cust, err := s.resolveNode(req.CustomerNode, req.Customer)
	if err != nil {
		httpError(w, http.StatusBadRequest, "customer: %v", err)
		return
	}
	if !finite(req.PrepSec, req.PlacedAt) {
		httpError(w, http.StatusBadRequest, "prep_sec and placed_at must be finite")
		return
	}
	if horizon := s.eng.Clock() + 7*86_400; req.PlacedAt > horizon {
		// The engine parks future orders until their window; an absurd
		// placement time would pin them in memory forever. The horizon is
		// relative to the engine clock — long -timescale runs push the
		// clock far past any absolute bound.
		httpError(w, http.StatusBadRequest, "placed_at %g beyond the scheduling horizon (clock+7d = %g)", req.PlacedAt, horizon)
		return
	}
	if req.PrepSec > 6*3600 {
		httpError(w, http.StatusBadRequest, "prep_sec %g exceeds the 6 h ceiling", req.PrepSec)
		return
	}
	if req.Items < 0 || req.Items > 1000 {
		httpError(w, http.StatusBadRequest, "items %d outside [0, 1000]", req.Items)
		return
	}
	if req.Items == 0 {
		req.Items = 1
	}
	if req.PrepSec <= 0 {
		req.PrepSec = 480 // a typical kitchen if the client has no estimate
	}
	o := &foodmatch.Order{
		ID:         foodmatch.OrderID(s.nextID.Add(1)),
		Restaurant: rest,
		Customer:   cust,
		PlacedAt:   req.PlacedAt,
		Items:      req.Items,
		Prep:       req.PrepSec,
		AssignedTo: -1,
	}
	// Capture the response fields before SubmitOrder: the engine owns the
	// order from the moment it is enqueued and may stamp PlacedAt on its
	// round goroutine concurrently with this handler.
	resp := orderResponse{Order: int64(o.ID), PlacedAt: o.PlacedAt}
	switch err := s.eng.SubmitOrder(o); {
	case errors.Is(err, foodmatch.ErrEngineQueueFull):
		httpError(w, http.StatusServiceUnavailable, "order queue full, retry with backoff")
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(resp)
	}
}

// pingRequest is the POST /vehicles/{id}/ping payload.
type pingRequest struct {
	Node *int64  `json:"node,omitempty"`
	At   *latLon `json:"at,omitempty"`
	// Optional shift update, seconds since midnight.
	ActiveFrom *float64 `json:"active_from,omitempty"`
	ActiveTo   *float64 `json:"active_to,omitempty"`
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad vehicle id %q", r.PathValue("id"))
		return
	}
	var req pingRequest
	if !s.decodeBody(w, r, "ping", &req) {
		return
	}
	vid := foodmatch.VehicleID(id)
	if req.ActiveFrom != nil || req.ActiveTo != nil {
		from, to := math.NaN(), math.NaN() // NaN = leave unchanged
		if req.ActiveFrom != nil {
			if !finite(*req.ActiveFrom) {
				// An explicit NaN/Inf would silently alias the internal
				// "leave unchanged" sentinel (or poison shift comparisons);
				// the API spells "unchanged" by omitting the field.
				httpError(w, http.StatusBadRequest, "active_from must be finite")
				return
			}
			from = *req.ActiveFrom
		}
		if req.ActiveTo != nil {
			if !finite(*req.ActiveTo) {
				httpError(w, http.StatusBadRequest, "active_to must be finite")
				return
			}
			to = *req.ActiveTo
		}
		if err := s.eng.SetVehicleShift(vid, from, to); err != nil {
			pingError(w, err)
			return
		}
	}
	if req.At != nil {
		// Validate coordinates whenever they are present — even when a
		// node id is also given and resolveNode would not look at them —
		// because they still feed the learner's map-matching plane below.
		if err := checkLatLon(req.At); err != nil {
			httpError(w, http.StatusBadRequest, "position: %v", err)
			return
		}
	}
	if req.Node != nil || req.At != nil {
		node, err := s.resolveNode(req.Node, req.At)
		if err != nil {
			httpError(w, http.StatusBadRequest, "position: %v", err)
			return
		}
		if err := s.eng.PingVehicle(vid, node); err != nil {
			pingError(w, err)
			return
		}
		if s.opts.Learner != nil && req.At != nil {
			// Raw coordinates additionally feed the map-matching plane of
			// the speed learner (validated above; Clock is the lock-free
			// atomic mirror, cheap per ping).
			s.opts.Learner.ObserveRaw(id, s.eng.Clock(),
				foodmatch.Point{Lat: req.At.Lat, Lon: req.At.Lon})
		}
	}
	w.WriteHeader(http.StatusAccepted)
}

// roadnetResponse wraps the engine's dynamic-road-network status with the
// daemon's scenario tag.
type roadnetResponse struct {
	foodmatch.EngineRoadnetStatus
	Scenario string `json:"scenario,omitempty"`
}

func (s *Server) handleRoadnet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(roadnetResponse{
		EngineRoadnetStatus: s.eng.Roadnet(),
		Scenario:            s.opts.Scenario,
	})
}

func pingError(w http.ResponseWriter, err error) {
	if errors.Is(err, foodmatch.ErrEngineQueueFull) {
		httpError(w, http.StatusServiceUnavailable, "ping queue full")
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

// handleAssignments streams the assignment stream as NDJSON until the
// client disconnects (or the engine stops and closes the stream).
func (s *Server) handleAssignments(w http.ResponseWriter, r *http.Request) {
	buffer := 1024
	if b := r.URL.Query().Get("buffer"); b != "" {
		// Clamp: the value sizes a channel allocation, so an unbounded
		// client-supplied number would be a one-request memory DoS.
		if n, err := strconv.Atoi(b); err == nil && n > 0 && n <= 65536 {
			buffer = n
		}
	}
	sub := s.eng.Subscribe(buffer)
	defer sub.Cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	if canFlush {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-sub.C:
			if !open {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.eng.Snapshot())
}

// handleMetricsProm serves the observability registry in the Prometheus
// text exposition format (counters, gauges, latency histograms).
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	reg := s.eng.Obs()
	if reg == nil {
		httpError(w, http.StatusNotFound, "observability disabled (engine built with DisableObs)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w)
}

// handleTraceOrders tails the bounded order-lifecycle event ring as NDJSON,
// oldest first. ?n= bounds the tail (default 256, clamped to the ring).
func (s *Server) handleTraceOrders(w http.ResponseWriter, r *http.Request) {
	n := 256
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "bad n %q: want a positive integer", q)
			return
		}
		n = v
	}
	events := s.eng.TraceTail(n)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// handleAdminCheckpoint forces a durable checkpoint: the full engine state
// is written (atomically) to the durability directory and the WAL is
// truncated behind it. Returns a small summary of what was captured.
func (s *Server) handleAdminCheckpoint(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Checkpoint == nil {
		httpError(w, http.StatusNotFound, "durability disabled (start with -wal-dir)")
		return
	}
	doc, err := s.opts.Checkpoint()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"clock":            float64(doc.Clock),
		"orders":           len(doc.Orders),
		"vehicles":         len(doc.Vehicles),
		"wal_truncate_seq": doc.WALTruncateSeq(),
	})
}

// handleReadyz reports readiness: the engine loop is running and has
// completed at least one assignment round. Liveness stays on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.eng.Ready() {
		httpError(w, http.StatusServiceUnavailable, "engine not ready (no completed round yet)")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
