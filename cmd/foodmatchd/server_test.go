package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	foodmatch "repro"
)

// TestServerEndToEnd replays a CityB dinner-peak order slice through the
// HTTP handlers — POST /orders ingestion, the NDJSON /assignments stream,
// /metrics — while the engine clock is stepped deterministically.
func TestServerEndToEnd(t *testing.T) {
	city, err := foodmatch.LoadCity("CityB", foodmatch.DefaultScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := foodmatch.ExperimentConfig("CityB", foodmatch.DefaultScale)
	fleet := city.Fleet(1.0, cfg.MaxO, 1)
	eng, err := foodmatch.NewEngine(city.G, fleet, foodmatch.EngineConfig{
		Pipeline: cfg,
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eng, city, ServerOptions{}))
	defer ts.Close()

	// Attach a streaming consumer before any round runs.
	var decisions, rounds atomic.Int64
	streamResp, err := http.Get(ts.URL + "/assignments")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		sc := bufio.NewScanner(streamResp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev struct {
				Decision *struct {
					Orders []int64 `json:"orders"`
					Shard  int     `json:"shard"`
				} `json:"decision"`
				Round *struct {
					T float64 `json:"t"`
				} `json:"round"`
			}
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Errorf("bad stream line %q: %v", sc.Text(), err)
				return
			}
			if ev.Decision != nil {
				decisions.Add(1)
			}
			if ev.Round != nil {
				rounds.Add(1)
			}
		}
	}()

	start := 19.0 * 3600
	orders := foodmatch.OrderStreamWindow(city, 1, start, start+900)
	if len(orders) == 0 {
		t.Fatal("empty workload slice")
	}
	post := func(path, body string) *http.Response {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	next := 0
	for now := start + cfg.Delta; now < start+1800; now += cfg.Delta {
		for next < len(orders) && orders[next].PlacedAt < now {
			o := orders[next]
			next++
			body, _ := json.Marshal(orderRequest{
				RestaurantNode: ptr(int64(o.Restaurant)),
				CustomerNode:   ptr(int64(o.Customer)),
				Items:          o.Items,
				PrepSec:        o.Prep,
				PlacedAt:       o.PlacedAt,
			})
			resp, err := http.Post(ts.URL+"/orders", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("POST /orders -> %d", resp.StatusCode)
			}
			var or orderResponse
			if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if or.Order == 0 {
				t.Fatal("server did not allocate an order id")
			}
		}
		eng.Step(now)
	}

	// Vehicle ping endpoint: known id by node, by coordinate, unknown id.
	vid := fleet[0].ID
	if resp := post(fmt.Sprintf("/vehicles/%d/ping", vid), `{"node":3}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ping by node -> %d", resp.StatusCode)
	}
	pt := city.G.Point(3)
	if resp := post(fmt.Sprintf("/vehicles/%d/ping", vid),
		fmt.Sprintf(`{"at":{"lat":%f,"lon":%f}}`, pt.Lat, pt.Lon)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ping by coordinate -> %d", resp.StatusCode)
	}
	if resp := post("/vehicles/999999/ping", `{"node":3}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown vehicle ping -> %d", resp.StatusCode)
	}
	if resp := post("/orders", `{"items":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("order without location -> %d", resp.StatusCode)
	}
	if resp := post("/orders", `{not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed order -> %d", resp.StatusCode)
	}

	// Metrics must reflect the replay.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m foodmatch.EngineMetrics
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if int(m.OrdersAdmitted) != next {
		t.Fatalf("metrics admitted %d, submitted %d", m.OrdersAdmitted, next)
	}
	if m.Assigned == 0 {
		t.Fatal("no orders assigned during the replay")
	}
	if m.Shards != 2 || m.Rounds == 0 {
		t.Fatalf("metrics snapshot off: %+v", m)
	}
	// The shard-resident state is observable zone by zone: per-shard round
	// timings, resident populations and the served weight epoch.
	if len(m.PerShard) != 2 {
		t.Fatalf("per-shard metrics carry %d zones, want 2", len(m.PerShard))
	}
	residents := 0
	for i, sm := range m.PerShard {
		if sm.Shard != i {
			t.Fatalf("per-shard entry %d labelled shard %d", i, sm.Shard)
		}
		if sm.Rounds != m.Rounds {
			t.Fatalf("shard %d saw %d rounds, engine %d", i, sm.Rounds, m.Rounds)
		}
		if sm.AdvanceSecTotal < 0 || sm.AssignSecTotal < 0 || sm.PoolDepth < 0 {
			t.Fatalf("shard %d timing/queue fields invalid: %+v", i, sm)
		}
		if sm.Epoch != 0 {
			t.Fatalf("static engine shard %d serves epoch %d", i, sm.Epoch)
		}
		residents += sm.Vehicles
	}
	if residents != len(fleet) {
		t.Fatalf("per-shard vehicle residency sums to %d, fleet is %d", residents, len(fleet))
	}

	// The stream must have carried the rounds' decisions.
	deadline := time.Now().Add(5 * time.Second)
	for decisions.Load() == 0 || rounds.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream delivered %d decisions, %d rounds", decisions.Load(), rounds.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	streamResp.Body.Close()
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stream goroutine did not exit after disconnect")
	}
	if healthz, err := http.Get(ts.URL + "/healthz"); err != nil || healthz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", healthz, err)
	}
}

// TestServerRoadnetRouterStatus pins GET /roadnet's router-backend report:
// the active backend kind and, for backends that track customization work
// (CCH), the full vs incremental counters.
func TestServerRoadnetRouterStatus(t *testing.T) {
	city, err := foodmatch.LoadCity("CityA", foodmatch.DefaultScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := foodmatch.ExperimentConfig("CityA", foodmatch.DefaultScale)
	fleet := city.Fleet(1.0, cfg.MaxO, 1)
	eng, err := foodmatch.NewEngine(city.G, fleet, foodmatch.EngineConfig{
		Pipeline:  cfg,
		Shards:    2,
		NewRouter: foodmatch.NewCCHRouter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eng, city, ServerOptions{}))
	defer ts.Close()

	eng.Step(18*3600 + cfg.Delta) // one round: forces router queries

	resp, err := http.Get(ts.URL + "/roadnet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /roadnet: %d", resp.StatusCode)
	}
	var st struct {
		Router string `json:"router"`
		Metric *struct {
			Full        int64 `json:"full_customizations"`
			Incremental int64 `json:"incremental_customizations"`
		} `json:"metric"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Router != "cch" {
		t.Fatalf("router = %q, want cch", st.Router)
	}
	if st.Metric == nil {
		t.Fatal("metric missing for CCH backend")
	}
	if st.Metric.Incremental != 0 {
		t.Fatalf("static engine reported %d incremental customizations", st.Metric.Incremental)
	}
}

func ptr[T any](v T) *T { return &v }
