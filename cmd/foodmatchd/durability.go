package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sync"

	foodmatch "repro"
)

// checkpointFile is the checkpoint document's name inside -wal-dir. The
// write is temp-file + rename, so the name either points at a complete
// document or does not exist.
const checkpointFile = "checkpoint.json"

// durability is the daemon's crash-safety plane: the ingestion WAL plus the
// atomic checkpoint cycle. Boot order is restore checkpoint → replay WAL
// records past its high-waters → start the engine at the restored clock;
// every checkpoint truncates the WAL segments it makes redundant.
type durability struct {
	dir string
	wal *foodmatch.WAL
	eng *foodmatch.Engine

	// mu serializes checkpoint cycles: the rename and the WAL
	// rotate/truncate that follows must not interleave between a periodic
	// tick, an admin request and the shutdown checkpoint.
	mu sync.Mutex
}

// openWAL opens the ingestion write-ahead log in dir with its operational
// counters registered on reg (served by GET /metrics.prom alongside the
// engine's own instruments).
func openWAL(dir string, syncEvery int, reg *foodmatch.ObsRegistry) (*foodmatch.WAL, []foodmatch.WALRecord, error) {
	appendsOrder := reg.Counter("foodmatchd_wal_appends_total",
		"WAL records appended, by kind.", map[string]string{"kind": "order"})
	appendsPing := reg.Counter("foodmatchd_wal_appends_total",
		"WAL records appended, by kind.", map[string]string{"kind": "ping"})
	fsyncSec := reg.Histogram("foodmatchd_wal_fsync_seconds",
		"WAL fsync latency.", foodmatch.ObsExpBuckets(100e-6, 4, 10), nil)
	replayed := reg.Counter("foodmatchd_wal_replayed_total",
		"WAL records recovered at boot.", nil)
	truncated := reg.Counter("foodmatchd_wal_truncated_total",
		"WAL segments deleted by checkpoint truncation.", nil)
	return foodmatch.OpenWAL(dir, foodmatch.WALOptions{
		SyncEvery: syncEvery,
		Metrics: &foodmatch.WALMetrics{
			AppendsOrder: appendsOrder.Inc,
			AppendsPing:  appendsPing.Inc,
			Fsync:        fsyncSec.Observe,
			Replayed:     func(n int) { replayed.Add(int64(n)) },
			Truncated:    func(n int) { truncated.Add(int64(n)) },
		},
	})
}

// restoreEngine rebuilds engine state from dir: the checkpoint document (if
// one exists) and the recovered WAL records past its high-waters. Returns
// the clock to resume at (meaningful only when restored) and the highest
// order id seen anywhere, so the HTTP id allocator starts above it.
func restoreEngine(eng *foodmatch.Engine, dir string, recs []foodmatch.WALRecord) (clock float64, maxOrderID int64, restored bool, err error) {
	f, err := os.Open(filepath.Join(dir, checkpointFile))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// First boot (or the checkpoint was never written): the WAL alone
		// carries every accepted ingestion, replayed below from seq 1.
	case err != nil:
		return 0, 0, false, err
	default:
		defer f.Close()
		doc, rerr := foodmatch.ReadEngineCheckpoint(f)
		if rerr != nil {
			return 0, 0, false, fmt.Errorf("%s: %w", checkpointFile, rerr)
		}
		if rerr := eng.RestoreCheckpoint(doc); rerr != nil {
			return 0, 0, false, fmt.Errorf("restore %s: %w", checkpointFile, rerr)
		}
		restored = true
		clock = float64(doc.Clock)
		for _, o := range doc.Orders {
			maxOrderID = max(maxOrderID, o.ID)
		}
		log.Printf("foodmatchd: restored checkpoint: clock=%.0fs orders=%d vehicles=%d",
			clock, len(doc.Orders), len(doc.Vehicles))
	}
	orders, pings, err := eng.ReplayWAL(recs)
	if err != nil {
		return 0, 0, restored, fmt.Errorf("wal replay: %w", err)
	}
	if orders > 0 || pings > 0 {
		log.Printf("foodmatchd: replayed WAL: %d orders, %d pings past the checkpoint", orders, pings)
	}
	for _, r := range recs {
		if r.Order != nil {
			maxOrderID = max(maxOrderID, r.Order.ID)
		}
	}
	return clock, maxOrderID, restored, nil
}

// checkpoint runs one durable checkpoint cycle: capture the full engine
// state at the round barrier, write it to a temp file, fsync, rename over
// checkpoint.json, then rotate the WAL and delete the segments the document
// now covers. If anything fails before the rename the previous checkpoint
// (and the full WAL) remain the recovery source, so a crash mid-cycle never
// loses state.
func (d *durability) checkpoint() (*foodmatch.EngineCheckpoint, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "checkpoint-*.tmp")
	if err != nil {
		return nil, err
	}
	doc, err := d.eng.WriteCheckpoint(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(d.dir, checkpointFile))
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		return nil, err
	}
	if df, derr := os.Open(d.dir); derr == nil {
		// Make the rename itself durable before truncating the WAL records
		// the new document supersedes.
		_ = df.Sync()
		_ = df.Close()
	}
	if err := d.wal.Rotate(); err != nil {
		return nil, fmt.Errorf("wal rotate: %w", err)
	}
	if _, err := d.wal.TruncateThrough(doc.WALTruncateSeq()); err != nil {
		return nil, fmt.Errorf("wal truncate: %w", err)
	}
	return doc, nil
}

// checkpointAndLog is the fire-and-report form used by the periodic ticker
// and the shutdown path.
func (d *durability) checkpointAndLog(when string) {
	doc, err := d.checkpoint()
	if err != nil {
		log.Printf("foodmatchd: %s checkpoint failed: %v", when, err)
		return
	}
	summary, _ := json.Marshal(map[string]any{
		"clock": float64(doc.Clock), "orders": len(doc.Orders),
		"wal_truncate_seq": doc.WALTruncateSeq(), "wal_segments": d.wal.Segments(),
	})
	log.Printf("foodmatchd: %s checkpoint %s", when, summary)
}
