package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	foodmatch "repro"
)

func testCity(t *testing.T) (*foodmatch.City, *foodmatch.Config) {
	t.Helper()
	city, err := foodmatch.LoadCity("CityB", foodmatch.DefaultScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	return city, foodmatch.ExperimentConfig("CityB", foodmatch.DefaultScale)
}

// TestMaxBodyLimit is the 413 regression test: ingestion payloads beyond the
// configured cap are rejected before the JSON decoder buffers them, on both
// POST /orders and POST /vehicles/{id}/ping, while well-formed requests at
// normal size keep working.
func TestMaxBodyLimit(t *testing.T) {
	city, cfg := testCity(t)
	eng, err := foodmatch.NewEngine(city.G, city.Fleet(0.2, cfg.MaxO, 1), foodmatch.EngineConfig{
		Pipeline: cfg, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eng, city, ServerOptions{MaxBodyBytes: 1024}))
	defer ts.Close()

	big := `{"restaurant_node":12,"customer_node":400,"items":2,"prep_sec":540,"pad":"` +
		strings.Repeat("x", 4096) + `"}`
	resp, err := http.Post(ts.URL+"/orders", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized order: got %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/vehicles/1/ping", "application/json",
		strings.NewReader(`{"node":37,"pad":"`+strings.Repeat("y", 4096)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized ping: got %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/orders", "application/json",
		strings.NewReader(`{"restaurant_node":12,"customer_node":400,"items":2,"prep_sec":540}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("normal order under the cap: got %d, want 202", resp.StatusCode)
	}
}

// TestAdminCheckpointDisabled pins the no-durability behaviour: without a
// WAL, POST /admin/checkpoint is a 404, not a crash.
func TestAdminCheckpointDisabled(t *testing.T) {
	city, cfg := testCity(t)
	eng, err := foodmatch.NewEngine(city.G, city.Fleet(0.1, cfg.MaxO, 1), foodmatch.EngineConfig{
		Pipeline: cfg, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eng, city, ServerOptions{}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("admin checkpoint without -wal-dir: got %d, want 404", resp.StatusCode)
	}
}

// TestCrashRecoveryRoundTrip is the daemon recovery path end to end, in
// process: boot with a WAL, ingest orders over HTTP, checkpoint via the
// admin endpoint, ingest more (covered only by the WAL), abandon everything
// without any clean shutdown — the kill — then boot a second daemon stack
// from the same directory and verify zero accepted orders were lost, the
// clock resumed, and newly allocated order ids do not collide.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	city, cfg := testCity(t)
	dir := t.TempDir()

	boot := func(firstBoot bool) (*foodmatch.Engine, *durability, int64, float64, bool) {
		reg := foodmatch.NewObsRegistry()
		wlog, recs, err := openWAL(dir, 1, reg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := foodmatch.NewEngine(city.G, city.Fleet(0.1, cfg.MaxO, 1), foodmatch.EngineConfig{
			Pipeline: cfg, Shards: 1, Obs: reg, WAL: wlog,
		})
		if err != nil {
			t.Fatal(err)
		}
		if firstBoot && len(recs) != 0 {
			t.Fatalf("first boot recovered %d WAL records", len(recs))
		}
		clock, maxID, restored, err := restoreEngine(eng, dir, recs)
		if err != nil {
			t.Fatal(err)
		}
		return eng, &durability{dir: dir, wal: wlog, eng: eng}, maxID, clock, restored
	}

	eng, dur, _, _, restored := boot(true)
	if restored {
		t.Fatal("first boot claims a checkpoint restore")
	}
	ts := httptest.NewServer(NewServer(eng, city, ServerOptions{Checkpoint: dur.checkpoint}))

	// Orders far enough in the future to still be scheduled (not delivered)
	// at the kill, so the restored pool counts are directly comparable.
	postOrder := func(placedAt float64) int64 {
		body := fmt.Sprintf(`{"restaurant_node":12,"customer_node":400,"items":1,"prep_sec":300,"placed_at":%g}`, placedAt)
		resp, err := http.Post(ts.URL+"/orders", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("order rejected: %d", resp.StatusCode)
		}
		var or struct {
			Order int64 `json:"order"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
			t.Fatal(err)
		}
		return or.Order
	}
	const preCkpt, postCkpt = 4, 3
	for i := 0; i < preCkpt; i++ {
		postOrder(80_000 + float64(i))
	}
	eng.Step(66_000) // drain into the scheduled buffer; a round boundary for the cut

	resp, err := http.Post(ts.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ck struct {
		Clock  float64 `json:"clock"`
		Orders int     `json:"orders"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ck.Orders != preCkpt || ck.Clock != 66_000 {
		t.Fatalf("admin checkpoint: status %d, %d orders at clock %.0f (want %d at 66000)",
			resp.StatusCode, ck.Orders, ck.Clock, preCkpt)
	}

	var lastID int64
	for i := 0; i < postCkpt; i++ {
		lastID = postOrder(81_000 + float64(i))
	}
	// Kill: no Stop, no WAL close, no shutdown checkpoint. Only the admin
	// checkpoint and the fsynced WAL survive.
	ts.Close()

	eng2, dur2, maxID, clock, restored := boot(false)
	if !restored {
		t.Fatal("second boot did not restore the checkpoint")
	}
	if clock != 66_000 {
		t.Errorf("restored clock %.0f, want 66000", clock)
	}
	if maxID != lastID {
		t.Errorf("max recovered order id %d, want %d", maxID, lastID)
	}
	snap := eng2.Snapshot()
	if snap.ScheduledDepth != preCkpt+postCkpt {
		t.Errorf("restored scheduled depth %d, want %d (lost accepted orders)",
			snap.ScheduledDepth, preCkpt+postCkpt)
	}
	if snap.OrdersIngested != preCkpt+postCkpt {
		t.Errorf("restored ingested counter %d, want %d", snap.OrdersIngested, preCkpt+postCkpt)
	}

	// The rebooted daemon keeps serving: start the window clock at the
	// restored time (the daemon's boot path), wait for readiness, then
	// check new order ids land above everything recovered and another
	// checkpoint cycle succeeds against the running engine.
	ts2 := httptest.NewServer(NewServer(eng2, city, ServerOptions{
		Checkpoint: dur2.checkpoint, FirstOrderID: maxID,
	}))
	defer ts2.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := eng2.StartContext(ctx, clock, 3600); err != nil {
		t.Fatal(err)
	}
	defer eng2.Stop()
	deadline := time.Now().Add(15 * time.Second)
	for {
		r, err := http.Get(ts2.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz after recovery never turned 200 (last %d)", r.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if id := postOrder2(t, ts2.URL, 82_000); id != maxID+1 {
		t.Errorf("first post-recovery order id %d, want %d", id, maxID+1)
	}
	resp, err = http.Post(ts2.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-recovery checkpoint: %d", resp.StatusCode)
	}
}

func postOrder2(t *testing.T, base string, placedAt float64) int64 {
	t.Helper()
	body := fmt.Sprintf(`{"restaurant_node":12,"customer_node":400,"items":1,"prep_sec":300,"placed_at":%g}`, placedAt)
	resp, err := http.Post(base+"/orders", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("order rejected: %d", resp.StatusCode)
	}
	var or struct {
		Order int64 `json:"order"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		t.Fatal(err)
	}
	return or.Order
}
