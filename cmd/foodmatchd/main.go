// Command foodmatchd serves the online dispatch engine over HTTP: a
// long-running assignment service that ingests order placements and vehicle
// pings, runs the batching→FoodGraph→KM pipeline every ∆ seconds across K
// geographic zone shards, and streams assignment decisions to subscribers.
//
//	foodmatchd -city CityB -shards 4 -timescale 60
//
// then, against the default address:
//
//	curl -s localhost:8080/metrics | jq .
//	curl -s -X POST localhost:8080/orders \
//	     -d '{"restaurant_node":12,"customer_node":400,"items":2,"prep_sec":540}'
//	curl -s -X POST localhost:8080/vehicles/1/ping -d '{"node":37}'
//	curl -sN localhost:8080/assignments     # NDJSON decision stream
//	curl -s localhost:8080/roadnet | jq .   # weight epoch, slot, learner stats
//
// With -learn the daemon runs the live dynamic road network: vehicle
// traffic streams into a per-slot speed learner and every -refresh
// simulation seconds the learned weights are published as a new router
// epoch. Pair it with -scenario rain:1.3 (or rush:1.5) to make reality
// diverge from the graph the dispatcher initially believes and watch the
// epochs close the gap.
//
// The engine clock starts at -start hours (default the dinner peak) and
// advances ∆ simulation seconds every ∆/timescale wall seconds, so demos
// replay city time faster than reality; -timescale 1 runs in real time.
//
// With -wal-dir the daemon is crash-safe: every accepted order and ping is
// appended to a write-ahead log before it is queued, checkpoints capture the
// full dispatch state (periodically with -checkpoint, on demand with
// POST /admin/checkpoint, and on clean shutdown), and the next boot with the
// same directory restores the checkpoint, replays the WAL tail and resumes
// the clock where it stopped. See the README's "Durability" section.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	foodmatch "repro"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		cityName   = flag.String("city", "CityB", "Table II city preset")
		scale      = flag.Float64("scale", foodmatch.DefaultScale, "workload scale (1.0 = paper size)")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		polName    = flag.String("policy", "foodmatch", "assignment policy: foodmatch|km|greedy|reyes")
		routerKind = flag.String("router", "bounded", "shortest-path backend: bounded|dijkstra|hublabel|cch")
		shards     = flag.Int("shards", 4, "geographic zone shards K")
		resplit    = flag.Float64("resplit", 900, "simulation seconds between demand-driven shard re-splits (0 = keep the boot-time node-balanced split)")
		delta      = flag.Float64("delta", 0, "accumulation window seconds (0 = city default)")
		queue      = flag.Int("queue", 4096, "ingestion queue capacity")
		fleetFrac  = flag.Float64("fleet", 1.0, "fraction of the city fleet to register")
		startHour  = flag.Float64("start", 18, "simulation clock start, hours since midnight")
		timeScale  = flag.Float64("timescale", 60, "simulation seconds per wall second")
		scenario   = flag.String("scenario", "none", "true-traffic perturbation: none|rain:<mult>|rush:<factor>[,...]")
		learn      = flag.Bool("learn", false, "learn per-slot edge weights from live traffic and hot-swap routers")
		refresh    = flag.Float64("refresh", 900, "simulation seconds between weight-epoch publishes")
		minSamp    = flag.Int("minsamples", 3, "observations required before a learned cell is published")
		debugAddr  = flag.String("debug-addr", "", "when set, serve net/http/pprof on this address (e.g. localhost:6060)")
		slowRound  = flag.Float64("slowround", 0, "wall seconds; rounds slower than this dump their span tree as a structured log line (0 = off)")
		traceRing  = flag.Int("tracering", 4096, "order-lifecycle event ring capacity for GET /trace/orders (0 = off)")

		// Durability (see the README's "Durability" section).
		walDir    = flag.String("wal-dir", "", "durability directory: WAL segments + checkpoint.json; on boot, restore+replay from it (empty = no durability)")
		walSync   = flag.Int("wal-sync", 1, "fsync the WAL every N appends (1 = every accepted record)")
		ckptEvery = flag.Duration("checkpoint", 0, "wall-clock interval between automatic checkpoints (0 = only on shutdown and POST /admin/checkpoint)")

		// HTTP edge hardening.
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "http.Server.ReadTimeout: full request (headers+body) read budget")
		readHdrTO    = flag.Duration("read-header-timeout", 5*time.Second, "http.Server.ReadHeaderTimeout: header read budget (slowloris guard)")
		writeTimeout = flag.Duration("write-timeout", 0, "http.Server.WriteTimeout (0 = none: GET /assignments streams indefinitely)")
		idleTimeout  = flag.Duration("idle-timeout", 120*time.Second, "http.Server.IdleTimeout: keep-alive connection reap")
		maxBodyBytes = flag.Int64("max-body", 64<<10, "ingestion request body cap in bytes (413 beyond)")
	)
	flag.Parse()

	city, err := foodmatch.LoadCity(*cityName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := foodmatch.ExperimentConfig(*cityName, *scale)
	if *delta > 0 {
		cfg.Delta = *delta
	}
	if _, err := foodmatch.PolicyByName(*polName); err != nil {
		fatal(err)
	}
	if *polName == "km" {
		foodmatch.ConfigureVanillaKM(cfg)
	}

	// The true city may run a scenario (rain, extra dinner rush) the
	// assignment plane is not told about: decisions start on the dry
	// preset graph and — with -learn — converge onto reality through the
	// GPS loop, visible as advancing epochs on GET /roadnet.
	sc, err := foodmatch.ParseScenario(*scenario)
	if err != nil {
		fatal(err)
	}
	trueG := city.G
	if !sc.Zero() {
		trueG = sc.Apply(city.G)
	}
	ecfg := foodmatch.EngineConfig{
		Pipeline: cfg,
		NewPolicy: func() foodmatch.Policy {
			p, _ := foodmatch.PolicyByName(*polName)
			return p
		},
		Shards:     *shards,
		QueueSize:  *queue,
		TraceRing:  *traceRing,
		ResplitSec: *resplit,
	}
	switch *routerKind {
	case "bounded":
		// Leave NewRouter nil: the engine defaults to its bounded-SSSP
		// distance cache.
	case "dijkstra":
		ecfg.NewRouter = foodmatch.NewDijkstraRouter
	case "hublabel":
		ecfg.NewRouter = foodmatch.NewHubLabelRouter(0, false)
	case "cch":
		ecfg.NewRouter = foodmatch.NewCCHRouter()
	default:
		fatal(fmt.Errorf("unknown -router %q (want bounded|dijkstra|hublabel|cch)", *routerKind))
	}
	if *slowRound > 0 {
		ecfg.SlowRoundSec = *slowRound
		ecfg.OnSlowRound = func(rs foodmatch.EngineRoundStats) {
			// One structured line per offending round: the span tree says
			// which phase (and which shard/stage under it) ate the budget.
			line, err := json.Marshal(rs)
			if err != nil {
				return
			}
			log.Printf("foodmatchd: slow round (%.3fs > %.3fs): %s", rs.LatencySec, *slowRound, line)
		}
	}
	if !sc.Zero() {
		// The dispatcher must not get oracle knowledge of the scenario:
		// decisions start on the dry preset graph with or without -learn
		// (without it, they simply stay stale).
		ecfg.DecisionGraph = city.G
	}
	var learner *foodmatch.StreamLearner
	if *learn {
		learner = foodmatch.NewStreamLearner(trueG, foodmatch.StreamLearnerOptions{})
		ecfg.DecisionGraph = city.G
		ecfg.Learner = learner
		ecfg.WeightRefreshSec = *refresh
		ecfg.MinSamples = *minSamp
	}

	// Durability, part 1: the WAL must exist before the engine so accepted
	// ingestions are logged from the first request, and the engine must see
	// the shared registry so GET /metrics.prom carries WAL counters too.
	var (
		walLog  *foodmatch.WAL
		walRecs []foodmatch.WALRecord
	)
	if *walDir != "" {
		if ecfg.Obs == nil {
			ecfg.Obs = foodmatch.NewObsRegistry()
		}
		walLog, walRecs, err = openWAL(*walDir, *walSync, ecfg.Obs)
		if err != nil {
			fatal(fmt.Errorf("wal: %w", err))
		}
		ecfg.WAL = walLog
	}

	fleet := city.Fleet(*fleetFrac, cfg.MaxO, *seed)
	eng, err := foodmatch.NewEngine(trueG, fleet, ecfg)
	if err != nil {
		fatal(err)
	}

	// Durability, part 2: rebuild state from the previous run — restore the
	// checkpoint document, replay WAL records past its high-waters, resume
	// the clock where it stopped, and start the order-id allocator above
	// every id the recovered state already uses.
	startSim := *startHour * 3600
	var dur *durability
	var firstOrderID int64
	if walLog != nil {
		clock, maxID, restored, rerr := restoreEngine(eng, *walDir, walRecs)
		if rerr != nil {
			fatal(rerr)
		}
		if restored {
			startSim = clock
		}
		firstOrderID = maxID
		dur = &durability{dir: *walDir, wal: walLog, eng: eng}
	}

	// SIGINT/SIGTERM cancel the context, which halts the engine's window
	// clock mid-tick; the explicit drain below finishes in-flight work.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := eng.StartContext(ctx, startSim, *timeScale); err != nil {
		fatal(err)
	}

	if dur != nil && *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					dur.checkpointAndLog("periodic")
				}
			}
		}()
	}

	if *debugAddr != "" {
		// pprof lives on its own listener — and its own mux — so profiling
		// stays off the public API surface and nothing else that registers
		// on DefaultServeMux can leak onto the debug port. No WriteTimeout:
		// profile?seconds=N streams for as long as the client asked.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: *readHdrTO,
			IdleTimeout:       *idleTimeout,
		}
		go func() {
			log.Printf("foodmatchd: pprof on %s/debug/pprof/", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("foodmatchd: debug listener: %v", err)
			}
		}()
		go func() {
			// The debug server dies with the signal context, like the engine.
			<-ctx.Done()
			dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = dsrv.Shutdown(dctx)
		}()
	}

	sopts := ServerOptions{
		Learner:      learner,
		Scenario:     sc.Name,
		MaxBodyBytes: *maxBodyBytes,
		FirstOrderID: firstOrderID,
	}
	if dur != nil {
		sopts.Checkpoint = dur.checkpoint
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           NewServer(eng, city, sopts),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHdrTO,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	go func() {
		log.Printf("foodmatchd: %s @ %.0f nodes, %d vehicles, %d shards, ∆=%.0fs, %s on %s (scenario=%s learn=%v)",
			*cityName, float64(city.G.NumNodes()), len(fleet), *shards, cfg.Delta, *polName, *addr, sc.Name, *learn)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	<-ctx.Done()
	log.Println("foodmatchd: shutting down: draining assignment streams")

	// Stop halts the round loop and closes every assignment-stream
	// subscription, letting the NDJSON handlers flush their tails and
	// return; Shutdown then drains the remaining HTTP exchanges.
	eng.Stop()
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("foodmatchd: forced close after drain timeout: %v", err)
		_ = srv.Close()
	}

	if dur != nil {
		// One final checkpoint with the rounds stopped and the HTTP edge
		// drained, so a clean SIGTERM restart boots from the document alone
		// with an (almost) empty WAL behind it.
		dur.checkpointAndLog("shutdown")
		if err := walLog.Close(); err != nil {
			log.Printf("foodmatchd: wal close: %v", err)
		}
	}

	// Flush the final metrics snapshot so operators keep the run's totals.
	snap, err := json.Marshal(eng.Snapshot())
	if err != nil {
		fatal(err)
	}
	log.Printf("foodmatchd: final metrics %s", snap)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "foodmatchd:", err)
	os.Exit(1)
}
