package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	foodmatch "repro"
	"repro/internal/obs"
)

// TestServerObservabilitySurfaces boots the engine the way the daemon does
// (StartContext-driven clock) and exercises the observability endpoints:
// /readyz flips from 503 to 200 once the first round lands, /metrics.prom
// serves a valid Prometheus exposition, and /trace/orders tails lifecycle
// events for a submitted order.
func TestServerObservabilitySurfaces(t *testing.T) {
	city, err := foodmatch.LoadCity("CityB", foodmatch.DefaultScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := foodmatch.ExperimentConfig("CityB", foodmatch.DefaultScale)
	fleet := city.Fleet(1.0, cfg.MaxO, 1)
	eng, err := foodmatch.NewEngine(city.G, fleet, foodmatch.EngineConfig{
		Pipeline:  cfg,
		Shards:    2,
		TraceRing: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(eng, city, ServerOptions{}))
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	// Not started yet: alive but not ready.
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before start: %d", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before start = %d, want 503", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// 600 sim-seconds per wall second: a ∆=180 s round every 0.3 s.
	if err := eng.StartContext(ctx, 19*3600, 600); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// Feed one order so the lifecycle ring has something to say.
	order := `{"restaurant_node":12,"customer_node":400,"items":1,"prep_sec":540}`
	resp, err := http.Post(ts.URL+"/orders", "application/json", strings.NewReader(order))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("order rejected: %d", resp.StatusCode)
	}

	// Readiness flips once the first round completes.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if resp, _ := get("/readyz"); resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 200")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The Prometheus exposition validates and carries the round metrics.
	resp2, body := get("/metrics.prom")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("metrics.prom: %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics.prom content type %q", ct)
	}
	if err := obs.CheckExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"foodmatch_rounds_total",
		`foodmatch_round_phase_seconds_bucket{phase="match",le="0.0001"}`,
		`foodmatch_orders_total{event="ingested"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}

	// The order's lifecycle shows up on the trace tail.
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp3, body := get("/trace/orders?n=100")
		if resp3.StatusCode != http.StatusOK {
			t.Fatalf("trace/orders: %d", resp3.StatusCode)
		}
		found := false
		sc := bufio.NewScanner(strings.NewReader(body))
		for sc.Scan() {
			var ev struct {
				To    string `json:"to"`
				Order int64  `json:"order"`
			}
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			if ev.To != "" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trace tail never carried a lifecycle event")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Bad ?n= is rejected.
	if resp4, _ := get("/trace/orders?n=bogus"); resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("trace/orders?n=bogus = %d, want 400", resp4.StatusCode)
	}
}
