// Command promlint validates a Prometheus text-exposition payload on stdin
// (or a file argument): metric/label name syntax, TYPE-before-sample
// ordering, duplicate series, and histogram bucket invariants (cumulative
// non-decreasing counts, a +Inf bucket equal to _count). The CI smoke job
// pipes foodmatchd's GET /metrics.prom through it.
//
//	curl -s localhost:8080/metrics.prom | promlint
//	promlint scrape.prom
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var rd io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rd = f
	}
	if err := obs.CheckExposition(rd); err != nil {
		fatal(err)
	}
	fmt.Println("ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promlint:", err)
	os.Exit(1)
}
