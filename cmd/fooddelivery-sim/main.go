// Command fooddelivery-sim runs one food-delivery simulation: a Table II
// city preset (or fully custom parameters), an assignment policy and a time
// window, and prints the paper's evaluation metrics.
//
// Examples:
//
//	fooddelivery-sim -city CityB -policy foodmatch
//	fooddelivery-sim -city CityC -policy greedy -from 11 -to 14 -scale 0.05
//	fooddelivery-sim -city CityB -policy foodmatch -fleet 0.4 -eta 90 -gamma 0.75
//	fooddelivery-sim -city CityB -policy km -slots
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	foodmatch "repro"
)

func main() {
	var (
		cityName = flag.String("city", "CityB", "city preset: "+strings.Join(foodmatch.CityNames(), ", "))
		policy   = flag.String("policy", "foodmatch", "assignment policy: foodmatch, km, greedy, reyes")
		scale    = flag.Float64("scale", foodmatch.DefaultScale, "workload scale (1.0 = paper size)")
		seed     = flag.Int64("seed", 1, "deterministic seed for city and order stream")
		fromH    = flag.Float64("from", 18, "simulation start hour (0-24)")
		toH      = flag.Float64("to", 22, "simulation end hour (0-24)")
		fleet    = flag.Float64("fleet", 1.0, "fraction of the vehicle roster to deploy")
		delta    = flag.Float64("delta", 0, "accumulation window seconds (0 = city default)")
		eta      = flag.Float64("eta", 0, "batching cutoff eta seconds (0 = default 60)")
		gamma    = flag.Float64("gamma", -1, "angular/travel-time blend gamma (default 0.5)")
		kfactor  = flag.Float64("k", 0, "FoodGraph degree factor (0 = scaled default)")
		budget   = flag.Float64("budget", 0, "per-window compute budget seconds for overflow accounting")
		slots    = flag.Bool("slots", false, "print per-slot breakdown")
		traceOut = flag.String("trace", "", "write the event stream as JSON Lines to this file")
	)
	flag.Parse()

	city, err := foodmatch.LoadCity(*cityName, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	pol, err := foodmatch.PolicyByName(*policy)
	if err != nil {
		fatal(err)
	}
	cfg := foodmatch.ExperimentConfig(*cityName, *scale)
	if strings.EqualFold(*policy, "km") {
		foodmatch.ConfigureVanillaKM(cfg)
	}
	if *delta > 0 {
		cfg.Delta = *delta
	}
	if *eta > 0 {
		cfg.Eta = *eta
	}
	if *gamma >= 0 {
		cfg.Gamma = *gamma
	}
	if *kfactor > 0 {
		cfg.KFactor = *kfactor
	}
	cfg.ComputeBudget = *budget

	from, to := *fromH*3600, *toH*3600
	orders := foodmatch.OrderStreamWindow(city, *seed, from, to)
	vehicles := city.Fleet(*fleet, cfg.MaxO, *seed)

	fmt.Printf("city=%s scale=%g seed=%d policy=%s window=%02.0f:00-%02.0f:00\n",
		*cityName, *scale, *seed, pol.Name(), *fromH, *toH)
	fmt.Printf("graph: %d nodes, %d edges | %d restaurants | %d vehicles | %d orders\n",
		city.G.NumNodes(), city.G.NumEdges(), len(city.Restaurants), len(vehicles), len(orders))

	var rec *foodmatch.TraceRecorder
	opts := foodmatch.SimOptions{}
	if *traceOut != "" {
		rec = foodmatch.NewTraceRecorder()
		opts.Trace = rec
	}
	s, err := foodmatch.NewSimulator(city.G, orders, vehicles, pol, cfg, opts)
	if err != nil {
		fatal(err)
	}
	m := s.Run(from, to)
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		sum := rec.Summarise(cfg.MaxFirstMile)
		fmt.Printf("trace: %d events -> %s (within-promise %.1f%%, %d reassigned)\n",
			rec.Len(), *traceOut, 100*sum.WithinPromise, sum.Reassigned)
	}

	fmt.Println()
	fmt.Println(m.Summary())
	fmt.Printf("objective (XDT + rejection penalty): %.2f hours\n", m.ObjectiveHours())
	fmt.Printf("mean delivery time: %.1f min | mean XDT: %.1f min\n", m.MeanDeliveryMin(), m.MeanXDTMin())
	fmt.Printf("distance driven: %.1f km | reassignments: %d\n", m.DistM/1000, m.Reassignments)
	if *budget > 0 {
		fmt.Printf("overflown windows: %.1f%% (peak %.1f%%), max assign %.0f ms\n",
			100*m.OverflowRate(), 100*m.PeakOverflowRate(), 1000*m.AssignSecMax)
	}

	if *slots {
		fmt.Println("\nslot  orders  delivered  xdt(h)  wait(h)  o/km")
		for sh := int(*fromH); sh < int(*toH); sh++ {
			fmt.Printf("%02d:00 %6d %10d %7.1f %8.1f %6.3f\n",
				sh, m.SlotOrders[sh], m.SlotDelivered[sh],
				m.SlotXDTSec[sh]/3600, m.SlotWaitSec[sh]/3600, m.SlotOrdersPerKm(sh))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fooddelivery-sim:", err)
	os.Exit(1)
}
