// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section V). Each experiment id corresponds to a figure or
// table; multi-panel figures regenerate together because they share
// simulation runs. The -protocol flag runs multi-day evaluation protocols
// instead of single-replay experiments.
//
// Examples:
//
//	experiments -list
//	experiments -exp F6cde
//	experiments -exp all -scale 0.02 -from 18 -to 22
//	experiments -exp F7bcde -csv out/
//	experiments -protocol learn5test1 -city CityB -scenarios 'rain:1.6;rush:1.8'
//	experiments -protocol learn5test1 -policies foodmatch,greedy -json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	foodmatch "repro"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list available experiment ids")
		scale    = flag.Float64("scale", foodmatch.DefaultScale, "workload scale (1.0 = paper size)")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		fromH    = flag.Float64("from", 18, "simulation start hour")
		toH      = flag.Float64("to", 22, "simulation end hour")
		budget   = flag.Float64("budget", 0, "compute budget seconds for the overflow experiments")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON Lines (one table per line) instead of aligned text")
		protocol = flag.String("protocol", "", "multi-day protocol to run (learn5test1)")
		city     = flag.String("city", "CityB", "protocol city preset")
		policies = flag.String("policies", "foodmatch", "protocol policies (comma-separated)")
		scens    = flag.String("scenarios", "rain:1.6;rush:1.8", "protocol scenarios (';'-separated scenario syntax)")
		ldays    = flag.Int("learndays", 5, "protocol learning days before the held-out test day")
		slaMin   = flag.Float64("sla", 45, "protocol SLA threshold in minutes")
		minSamp  = flag.Int("minsamples", 2, "protocol minimum samples per exported weight cell")
		obsOut   = flag.String("obs-out", "", "write per-window observability telemetry (span trees + final obs_summary quantiles) as JSONL to this file")
	)
	flag.Parse()

	if *list || (*exp == "" && *protocol == "") {
		fmt.Println("available experiments (paper artefact -> id):")
		fmt.Println("  T2      Table II   dataset summary")
		fmt.Println("  F4a     Fig 4(a)   percentile-rank CDF of assigned batches")
		fmt.Println("  F6a     Fig 6(a)   order/vehicle ratio per timeslot")
		fmt.Println("  F6b     Fig 6(b)   XDT: FoodMatch vs Reyes")
		fmt.Println("  F6cde   Fig 6(c-e) XDT / O-per-km / WT: FoodMatch vs Greedy")
		fmt.Println("  F6fgh   Fig 6(f-h) overflown windows + running time")
		fmt.Println("  F6ijk   Fig 6(i-k) per-slot improvement over KM")
		fmt.Println("  F7a     Fig 7(a)   optimisation ablation (B&R / +BFS / +A)")
		fmt.Println("  F7bcde  Fig 7(b-e) fleet-size sweep")
		fmt.Println("  F8ac    Fig 8(a-c) eta sweep")
		fmt.Println("  F8dg    Fig 8(d-g) delta sweep")
		fmt.Println("  F8hk    Fig 8(h-k) k sweep")
		fmt.Println("  F9ac    Fig 9(a-c) gamma sweep")
		fmt.Println("  F9d     Fig 9(d)   rejections by gamma and fleet size")
		fmt.Println("  X1      (extra)    supply-scarcity calibration study")
		fmt.Println("  X2      (extra)    age-neutral weight correction ablation")
		fmt.Println("  X3      (extra)    batching candidate-radius ablation")
		fmt.Println("  X4      (extra)    shortest-path engine comparison")
		fmt.Println("  X5      (extra)    exact vs heuristic route planner (MAXO>3)")
		fmt.Println("  X6      (extra)    time-dependent congestion ablation")
		fmt.Println("  all     everything above")
		fmt.Println()
		fmt.Println("protocols (-protocol, Section V-B evaluation):")
		fmt.Println("  learn5test1   learn weights over N days, replay a held-out test day under")
		fmt.Println("                stale/learned/oracle weights; reports XDT, SLA violations and")
		fmt.Println("                the recovery ratio per scenario")
		return
	}

	st := foodmatch.DefaultExperimentSetup()
	st.Scale = *scale
	st.Seed = *seed
	st.StartHour = *fromH
	st.EndHour = *toH
	st.ComputeBudget = *budget
	if *obsOut != "" {
		f, err := os.Create(*obsOut)
		if err != nil {
			fatal(err)
		}
		st.Obs = foodmatch.NewObsLog(f)
		// Close writes the obs_summary line (and the file) after every
		// experiment/protocol below has run.
		defer func() {
			if err := st.Obs.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	emit := func(t *foodmatch.ExperimentTable) {
		if *jsonOut {
			line, err := t.JSON()
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(line))
		} else {
			fmt.Println(t.Render())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if *protocol != "" {
		if !strings.EqualFold(*protocol, "learn5test1") {
			fatal(fmt.Errorf("unknown protocol %q (want learn5test1)", *protocol))
		}
		opt := foodmatch.ProtocolOptions{
			City:       *city,
			Policies:   splitList(*policies),
			LearnDays:  *ldays,
			SLASec:     *slaMin * 60,
			MinSamples: *minSamp,
		}
		// Scenarios split on ';' only: ',' joins kinds within one scenario
		// ("rain:1.3,rush:1.5").
		for _, s := range splitOn(*scens, ';') {
			sc, err := foodmatch.ParseScenario(s)
			if err != nil {
				fatal(err)
			}
			opt.Scenarios = append(opt.Scenarios, sc)
		}
		t0 := time.Now()
		tables, err := foodmatch.RunLearn5Test1Tables(st, opt)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			emit(t)
		}
		progress := os.Stdout
		if *jsonOut {
			progress = os.Stderr
		}
		fmt.Fprintf(progress, "-- learn%dtest1 (%s) completed in %v --\n",
			opt.LearnDays, *city, time.Since(t0).Round(time.Second))
		return
	}

	ids := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		ids = foodmatch.ExperimentIDs()
	}
	for _, id := range ids {
		t0 := time.Now()
		tables, err := foodmatch.RunExperiment(id, st)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			emit(t)
		}
		// Keep stdout pure JSONL under -json; progress goes to stderr.
		progress := os.Stdout
		if *jsonOut {
			progress = os.Stderr
		}
		fmt.Fprintf(progress, "-- %s regenerated in %v --\n\n", id, time.Since(t0).Round(time.Second))
	}
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string { return splitOn(s, ',') }

// splitOn splits on one separator rune, trimming and dropping empties.
func splitOn(s string, sep rune) []string {
	var out []string
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == sep }) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
