// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section V). Each experiment id corresponds to a figure or
// table; multi-panel figures regenerate together because they share
// simulation runs.
//
// Examples:
//
//	experiments -list
//	experiments -exp F6cde
//	experiments -exp all -scale 0.02 -from 18 -to 22
//	experiments -exp F7bcde -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	foodmatch "repro"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list) or 'all'")
		list    = flag.Bool("list", false, "list available experiment ids")
		scale   = flag.Float64("scale", foodmatch.DefaultScale, "workload scale (1.0 = paper size)")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		fromH   = flag.Float64("from", 18, "simulation start hour")
		toH     = flag.Float64("to", 22, "simulation end hour")
		budget  = flag.Float64("budget", 0, "compute budget seconds for the overflow experiments")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON Lines (one table per line) instead of aligned text")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments (paper artefact -> id):")
		fmt.Println("  T2      Table II   dataset summary")
		fmt.Println("  F4a     Fig 4(a)   percentile-rank CDF of assigned batches")
		fmt.Println("  F6a     Fig 6(a)   order/vehicle ratio per timeslot")
		fmt.Println("  F6b     Fig 6(b)   XDT: FoodMatch vs Reyes")
		fmt.Println("  F6cde   Fig 6(c-e) XDT / O-per-km / WT: FoodMatch vs Greedy")
		fmt.Println("  F6fgh   Fig 6(f-h) overflown windows + running time")
		fmt.Println("  F6ijk   Fig 6(i-k) per-slot improvement over KM")
		fmt.Println("  F7a     Fig 7(a)   optimisation ablation (B&R / +BFS / +A)")
		fmt.Println("  F7bcde  Fig 7(b-e) fleet-size sweep")
		fmt.Println("  F8ac    Fig 8(a-c) eta sweep")
		fmt.Println("  F8dg    Fig 8(d-g) delta sweep")
		fmt.Println("  F8hk    Fig 8(h-k) k sweep")
		fmt.Println("  F9ac    Fig 9(a-c) gamma sweep")
		fmt.Println("  F9d     Fig 9(d)   rejections by gamma and fleet size")
		fmt.Println("  X1      (extra)    supply-scarcity calibration study")
		fmt.Println("  X2      (extra)    age-neutral weight correction ablation")
		fmt.Println("  X3      (extra)    batching candidate-radius ablation")
		fmt.Println("  X4      (extra)    shortest-path engine comparison")
		fmt.Println("  X5      (extra)    exact vs heuristic route planner (MAXO>3)")
		fmt.Println("  X6      (extra)    time-dependent congestion ablation")
		fmt.Println("  all     everything above")
		return
	}

	st := foodmatch.DefaultExperimentSetup()
	st.Scale = *scale
	st.Seed = *seed
	st.StartHour = *fromH
	st.EndHour = *toH
	st.ComputeBudget = *budget

	emit := func(t *foodmatch.ExperimentTable) {
		if *jsonOut {
			line, err := t.JSON()
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(line))
		} else {
			fmt.Println(t.Render())
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatal(err)
			}
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	ids := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		ids = foodmatch.ExperimentIDs()
	}
	for _, id := range ids {
		t0 := time.Now()
		tables, err := foodmatch.RunExperiment(id, st)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			emit(t)
		}
		// Keep stdout pure JSONL under -json; progress goes to stderr.
		progress := os.Stdout
		if *jsonOut {
			progress = os.Stderr
		}
		fmt.Fprintf(progress, "-- %s regenerated in %v --\n\n", id, time.Since(t0).Round(time.Second))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
