// Package foodmatch is a from-scratch Go reproduction of
//
//	Joshi, Singh, Ranu, Bagchi, Karia, Kala.
//	"Batching and Matching for Food Delivery in Dynamic Road Networks."
//	ICDE 2021 (arXiv:2008.12905).
//
// It provides the full FOODMATCH assignment pipeline — order batching by
// iterative clustering, sparsified bipartite FoodGraph construction via
// best-first search with angular distance, Kuhn–Munkres minimum-weight
// matching, and reshuffling — together with every substrate the paper
// depends on: time-dependent road networks with exact shortest-path
// engines (Dijkstra, bounded SSSP, hub labels), quickest route planning
// under pickup/dropoff precedence and food-preparation waits, a
// discrete-event delivery simulator, the Greedy / vanilla-KM / Reyes et al.
// baselines, and deterministic synthetic workloads modelled on the paper's
// Table II cities.
//
// # Quickstart
//
//	city, _ := foodmatch.LoadCity("CityB", foodmatch.DefaultScale, 1)
//	orders := foodmatch.OrderStream(city, 1)
//	fleet := city.Fleet(1.0, 3, 1)
//	cfg := foodmatch.DefaultConfig()
//	sim, _ := foodmatch.NewSimulator(city.G, orders, fleet,
//		foodmatch.NewFoodMatch(), cfg, foodmatch.SimOptions{})
//	metrics := sim.Run(18*3600, 22*3600) // dinner peak
//	fmt.Println(metrics.Summary())
//
// See the examples/ directory for complete programs and cmd/experiments for
// the drivers that regenerate every table and figure of the paper.
package foodmatch

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/spindex"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported core types. The internal packages remain the implementation;
// this facade is the supported public surface.
type (
	// Config carries every tunable of the system (Section V-B defaults).
	Config = model.Config
	// Order is a food order per Definition 2 plus lifecycle state.
	Order = model.Order
	// OrderID identifies an order.
	OrderID = model.OrderID
	// Vehicle is a delivery vehicle with runtime state.
	Vehicle = model.Vehicle
	// VehicleID identifies a vehicle.
	VehicleID = model.VehicleID
	// RoutePlan is a pickup/dropoff stop sequence (Definition 3).
	RoutePlan = model.RoutePlan
	// Batch is a set of orders grouped for one vehicle.
	Batch = model.Batch
	// Graph is a time-dependent road network (Definition 1).
	Graph = roadnet.Graph
	// GraphBuilder constructs road networks.
	GraphBuilder = roadnet.Builder
	// NodeID identifies a road-network node.
	NodeID = roadnet.NodeID
	// Point is a WGS-84 coordinate.
	Point = geo.Point
	// SPFunc is the shortest-path oracle signature.
	SPFunc = roadnet.SPFunc
	// City is a synthetic workload city.
	City = workload.City
	// CityParams parameterises city generation.
	CityParams = workload.CityParams
	// Policy is an order-assignment strategy.
	Policy = policy.Policy
	// Metrics aggregates the paper's evaluation metrics.
	Metrics = sim.Metrics
	// Simulator replays an order stream under a policy.
	Simulator = sim.Simulator
	// SimOptions tunes the simulator.
	SimOptions = sim.Options
	// HubLabels is the pruned-landmark-labeling distance index.
	HubLabels = spindex.Index
	// ExperimentTable is a rendered experiment artefact.
	ExperimentTable = experiments.Table
	// ExperimentSetup fixes scale/seed/window for experiment drivers.
	ExperimentSetup = experiments.Setup
	// TraceRecorder captures the simulation event stream for post-hoc
	// analysis (timelines, queue depth, service levels).
	TraceRecorder = trace.Recorder
	// TraceEvent is one simulation event.
	TraceEvent = trace.Event
)

// DefaultScale is the laptop-scale workload operating point (1:50 of the
// paper's Table II city sizes).
const DefaultScale = workload.DefaultScale

// DefaultConfig returns the paper's Section V-B operating point.
func DefaultConfig() *Config { return model.DefaultConfig() }

// NewTraceRecorder returns an in-memory event-stream recorder; pass it as
// SimOptions.Trace.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NewFoodMatch returns the full FOODMATCH policy (Section IV).
func NewFoodMatch() Policy { return policy.NewFoodMatch() }

// NewGreedy returns the Greedy baseline (Section III).
func NewGreedy() Policy { return policy.NewGreedy() }

// NewReyes returns the Reyes et al. [5] baseline.
func NewReyes() Policy { return policy.NewReyes() }

// NewVanillaKM returns plain Kuhn–Munkres matching with every FOODMATCH
// optimisation disabled. Pair it with ConfigureVanillaKM(cfg).
func NewVanillaKM() Policy { return policy.NewVanillaKM() }

// ConfigureVanillaKM flips every optimisation switch off, in place.
func ConfigureVanillaKM(cfg *Config) *Config { return policy.ConfigureVanillaKM(cfg) }

// PolicyByName resolves "foodmatch", "km", "greedy" or "reyes".
func PolicyByName(name string) (Policy, error) { return experiments.PolicyByName(name) }

// CityNames lists the Table II city presets.
func CityNames() []string { return workload.CityNames() }

// LoadCity builds a Table II city preset at the given scale (1.0 = paper
// size) deterministically from seed.
func LoadCity(name string, scale float64, seed int64) (*City, error) {
	return workload.Preset(name, scale, seed)
}

// GenerateCity builds a fully custom city.
func GenerateCity(p CityParams) (*City, error) { return workload.Generate(p) }

// OrderStream generates one deterministic day of orders for a city.
func OrderStream(c *City, seed int64) []*Order { return workload.OrderStream(c, seed) }

// OrderStreamWindow restricts generation to placement times in [from, to)
// seconds since midnight.
func OrderStreamWindow(c *City, seed int64, from, to float64) []*Order {
	return workload.OrderStreamWindow(c, seed, from, to)
}

// NewSimulator builds a simulator over a road network, an order stream, a
// fleet and a policy.
func NewSimulator(g *Graph, orders []*Order, fleet []*Vehicle, pol Policy, cfg *Config, opts SimOptions) (*Simulator, error) {
	return sim.New(g, orders, fleet, pol, cfg, opts)
}

// NewHubLabels builds the pruned-landmark-labeling distance index over a
// road network (the stand-in for the paper's hierarchical hub labels [18]).
func NewHubLabels(g *Graph) *HubLabels { return spindex.New(g) }

// ShortestPath returns the quickest travel time in seconds from -> to
// departing at time t (seconds since midnight).
func ShortestPath(g *Graph, from, to NodeID, t float64) float64 {
	return roadnet.ShortestPath(g, from, to, t)
}

// DefaultExperimentSetup is the bench-harness experiment operating point
// (DefaultScale, dinner peak, seed 1).
func DefaultExperimentSetup() ExperimentSetup { return experiments.DefaultSetup() }

// RunExperiment regenerates one of the paper's tables/figures by id (see
// ExperimentIDs); returns one table per panel.
func RunExperiment(id string, st ExperimentSetup) ([]*ExperimentTable, error) {
	return experiments.Generate(id, st)
}

// ExperimentIDs lists the available experiment groups.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentConfig returns the per-city default config used by the
// experiment drivers (∆ per city, KFactor scaled to the fleet).
func ExperimentConfig(cityName string, scale float64) *Config {
	return experiments.ConfigForScale(cityName, scale)
}

// Online dispatch engine re-exports: the concurrent, zone-sharded service
// that runs the assignment pipeline against a live order/vehicle stream.
type (
	// Engine is the online dispatcher (see internal/engine).
	Engine = engine.Engine
	// EngineConfig tunes the online engine (shards, queues, policy factory).
	EngineConfig = engine.Config
	// EngineMetrics is a point-in-time engine health/throughput snapshot.
	EngineMetrics = engine.Metrics
	// EngineRoundStats summarises one assignment round.
	EngineRoundStats = engine.RoundStats
	// AssignmentDecision is one published (vehicle, orders) decision.
	AssignmentDecision = engine.Decision
	// AssignmentStreamEvent is one message on the assignment stream.
	AssignmentStreamEvent = engine.StreamEvent
	// AssignmentSubscription consumes the assignment stream.
	AssignmentSubscription = engine.Subscription
)

// ErrEngineQueueFull is the engine's ingestion backpressure signal.
var ErrEngineQueueFull = engine.ErrQueueFull

// NewEngine builds the online dispatch engine over a road network and a
// fleet. Drive it with Start (real-time window clock) or Step (replay).
func NewEngine(g *Graph, fleet []*Vehicle, cfg EngineConfig) (*Engine, error) {
	return engine.New(g, fleet, cfg)
}

// GPS data pipeline re-exports (Section V-A: weights learned from pings).
type (
	// GPSPing is one GPS observation.
	GPSPing = gps.Ping
	// GPSDrive is a ground-truth timed traversal.
	GPSDrive = gps.Drive
	// GPSMatcher map-matches ping sequences onto a road network
	// (Newson–Krumm HMM).
	GPSMatcher = gps.Matcher
	// GPSMatchOptions tunes the matcher.
	GPSMatchOptions = gps.MatchOptions
	// SpeedLearner aggregates matched trajectories into per-edge per-slot
	// travel-time estimates.
	SpeedLearner = gps.SpeedLearner
)

// SynthesizePings emits noisy GPS observations along a drive.
func SynthesizePings(g *Graph, d GPSDrive, intervalSec, sigmaM float64, rng *rand.Rand) []GPSPing {
	return gps.Synthesize(g, d, intervalSec, sigmaM, rng)
}

// NewGPSMatcher builds an HMM map-matcher for g.
func NewGPSMatcher(g *Graph, opt GPSMatchOptions) *GPSMatcher { return gps.NewMatcher(g, opt) }

// DefaultGPSMatchOptions mirrors the Newson–Krumm parameterisation.
func DefaultGPSMatchOptions() GPSMatchOptions { return gps.DefaultMatchOptions() }

// NewSpeedLearner returns an empty per-edge per-slot travel-time learner.
func NewSpeedLearner(g *Graph) *SpeedLearner { return gps.NewSpeedLearner(g) }

// RoadPath computes the quickest executable path departing at time t, with
// per-node arrival times (the input shape SpeedLearner and GPSDrive use).
func RoadPath(g *Graph, from, to NodeID, t float64) *roadnet.PathResult {
	return roadnet.Path(g, from, to, t)
}
