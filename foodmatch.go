// Package foodmatch is a from-scratch Go reproduction of
//
//	Joshi, Singh, Ranu, Bagchi, Karia, Kala.
//	"Batching and Matching for Food Delivery in Dynamic Road Networks."
//	ICDE 2021 (arXiv:2008.12905).
//
// It provides the full FOODMATCH assignment pipeline — order batching by
// iterative clustering, sparsified bipartite FoodGraph construction via
// best-first search with angular distance, Kuhn–Munkres minimum-weight
// matching, and reshuffling — together with every substrate the paper
// depends on: time-dependent road networks with exact shortest-path
// engines (Dijkstra, bounded SSSP, hub labels), quickest route planning
// under pickup/dropoff precedence and food-preparation waits, a
// discrete-event delivery simulator, the Greedy / vanilla-KM / Reyes et al.
// baselines, and deterministic synthetic workloads modelled on the paper's
// Table II cities.
//
// # Quickstart
//
//	city, _ := foodmatch.LoadCity("CityB", foodmatch.DefaultScale, 1)
//	orders := foodmatch.OrderStream(city, 1)
//	fleet := city.Fleet(1.0, 3, 1)
//	cfg := foodmatch.DefaultConfig()
//	sim, _ := foodmatch.NewSimulator(city.G, orders, fleet,
//		foodmatch.NewFoodMatch(), cfg, foodmatch.SimOptions{})
//	metrics := sim.Run(18*3600, 22*3600) // dinner peak
//	fmt.Println(metrics.Summary())
//
// The assignment round decomposes into four swappable stages — Batcher,
// GraphSparsifier, Reshuffler, Matcher — composed with NewPipeline, and
// every stage consumes network distances through one injected Router
// (Dijkstra, bounded SSSP, hub labels, or an LRU-cached decorator):
//
//	pol := foodmatch.NewPipeline(
//		foodmatch.WithBatcher(foodmatch.NewGreedyBatcher(0)),
//		foodmatch.WithMatcher(foodmatch.NewKMMatcher()),
//	)
//	router := foodmatch.NewCachedRouter(foodmatch.NewHubLabels(city.G), 1<<17)
//	sim, _ := foodmatch.NewSimulator(city.G, orders, fleet, pol, cfg,
//		foodmatch.SimOptions{Router: router})
//
// NewPipeline with no options is exactly NewFoodMatch. Long-running entry
// points have context-aware variants (RunContext, StartContext,
// StepContext) for cancellation and deadline propagation.
//
// See the examples/ directory for complete programs and cmd/experiments for
// the drivers that regenerate every table and figure of the paper.
package foodmatch

import (
	"io"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/gps"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/spindex"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Re-exported core types. The internal packages remain the implementation;
// this facade is the supported public surface.
type (
	// Config carries every tunable of the system (Section V-B defaults).
	Config = model.Config
	// Order is a food order per Definition 2 plus lifecycle state.
	Order = model.Order
	// OrderID identifies an order.
	OrderID = model.OrderID
	// Vehicle is a delivery vehicle with runtime state.
	Vehicle = model.Vehicle
	// VehicleID identifies a vehicle.
	VehicleID = model.VehicleID
	// RoutePlan is a pickup/dropoff stop sequence (Definition 3).
	RoutePlan = model.RoutePlan
	// Batch is a set of orders grouped for one vehicle.
	Batch = model.Batch
	// Graph is a time-dependent road network (Definition 1).
	Graph = roadnet.Graph
	// GraphBuilder constructs road networks.
	GraphBuilder = roadnet.Builder
	// NodeID identifies a road-network node.
	NodeID = roadnet.NodeID
	// Point is a WGS-84 coordinate.
	Point = geo.Point
	// SPFunc is the shortest-path oracle signature. Every SPFunc is also a
	// Router.
	SPFunc = roadnet.SPFunc
	// Router is the unified shortest-path substrate every pipeline stage,
	// the simulator and the engine consume via injection. Backends:
	// NewDijkstraRouter, NewBoundedRouter, NewHubLabels (hub labels), and
	// the NewCachedRouter decorator.
	Router = roadnet.Router
	// City is a synthetic workload city.
	City = workload.City
	// CityParams parameterises city generation.
	CityParams = workload.CityParams
	// Policy is an order-assignment strategy: the four canned policies and
	// any NewPipeline composition implement it.
	Policy = policy.Policy
	// WindowInput is one accumulation window as a policy sees it.
	WindowInput = pipeline.Input
	// Assignment is one policy decision.
	Assignment = pipeline.Assignment
	// Metrics aggregates the paper's evaluation metrics.
	Metrics = sim.Metrics
	// Simulator replays an order stream under a policy.
	Simulator = sim.Simulator
	// SimOptions tunes the simulator.
	SimOptions = sim.Options
	// HubLabels is the pruned-landmark-labeling distance index. It
	// implements Router, so it drops into SimOptions.Router or
	// EngineConfig.NewRouter as the hub-label shortest-path backend.
	HubLabels = spindex.Index
	// ExperimentTable is a rendered experiment artefact.
	ExperimentTable = experiments.Table
	// ExperimentSetup fixes scale/seed/window for experiment drivers.
	ExperimentSetup = experiments.Setup
	// TraceRecorder captures the simulation event stream for post-hoc
	// analysis (timelines, queue depth, service levels).
	TraceRecorder = trace.Recorder
	// TraceEvent is one simulation event.
	TraceEvent = trace.Event
	// ObsRegistry is the metrics registry of the observability plane:
	// counters, gauges and fixed-bucket histograms with Prometheus text
	// exposition (Engine.Obs, ObsLog.Registry).
	ObsRegistry = obs.Registry
	// ObsPhase is one node of a round's span tree (RoundStats.Phases,
	// RoundTelemetry.Phases).
	ObsPhase = obs.Phase
	// OrderTraceEvent is one order-lifecycle transition from the bounded
	// trace ring (Engine.TraceTail, GET /trace/orders).
	OrderTraceEvent = obs.OrderEvent
	// RoundTelemetry is the offline simulator's per-window telemetry
	// (SimOptions.OnRound).
	RoundTelemetry = sim.RoundTelemetry
	// ObsLog collects per-window telemetry from experiment runs into a
	// JSONL stream plus aggregate latency histograms; set it as
	// ExperimentSetup.Obs (cmd/experiments wires one with -obs-out).
	ObsLog = experiments.ObsLog
)

// DefaultScale is the laptop-scale workload operating point (1:50 of the
// paper's Table II city sizes).
const DefaultScale = workload.DefaultScale

// DefaultConfig returns the paper's Section V-B operating point.
func DefaultConfig() *Config { return model.DefaultConfig() }

// NewTraceRecorder returns an in-memory event-stream recorder; pass it as
// SimOptions.Trace.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NewObsLog returns an experiment telemetry collector writing JSONL to w
// (nil collects aggregates only); see ObsLog.
func NewObsLog(w io.Writer) *ObsLog { return experiments.NewObsLog(w) }

// NewFoodMatch returns the full FOODMATCH policy (Section IV).
func NewFoodMatch() Policy { return policy.NewFoodMatch() }

// NewGreedy returns the Greedy baseline (Section III).
func NewGreedy() Policy { return policy.NewGreedy() }

// NewReyes returns the Reyes et al. [5] baseline.
func NewReyes() Policy { return policy.NewReyes() }

// NewVanillaKM returns plain Kuhn–Munkres matching with every FOODMATCH
// optimisation disabled. Pair it with ConfigureVanillaKM(cfg).
func NewVanillaKM() Policy { return policy.NewVanillaKM() }

// ConfigureVanillaKM flips every optimisation switch off, in place.
func ConfigureVanillaKM(cfg *Config) *Config { return policy.ConfigureVanillaKM(cfg) }

// PolicyByName resolves "foodmatch", "km", "greedy" or "reyes".
func PolicyByName(name string) (Policy, error) { return experiments.PolicyByName(name) }

// Composable pipeline re-exports: the stage interfaces behind the canned
// policies, so callers can mix stages (e.g. greedy batching + KM matching,
// or a custom sparsifier) without forking internals. See internal/pipeline.
type (
	// Pipeline is a composed assignment policy (batch → sparsify →
	// reshuffle → match); it implements Policy.
	Pipeline = pipeline.Pipeline
	// PipelineOption configures NewPipeline.
	PipelineOption = pipeline.Option
	// PipelineStats is the per-stage timing/size breakdown recorded on
	// every Assign and surfaced on the engine's round stats.
	PipelineStats = pipeline.Stats
	// Batcher groups O(ℓ) into batches (stage 1).
	Batcher = pipeline.Batcher
	// GraphSparsifier constructs the batch×vehicle cost graph (stage 2).
	GraphSparsifier = pipeline.GraphSparsifier
	// Reshuffler adjusts edge weights with incumbent information (stage 3).
	Reshuffler = pipeline.Reshuffler
	// Matcher turns the graph into assignments (stage 4).
	Matcher = pipeline.Matcher
)

// NewPipeline composes an assignment pipeline from stages. With no options
// it is exactly NewFoodMatch's composition (decision-identical); options
// swap individual stages:
//
//	p := foodmatch.NewPipeline(
//		foodmatch.WithBatcher(foodmatch.NewGreedyBatcher(0)),
//		foodmatch.WithMatcher(foodmatch.NewKMMatcher()),
//	)
func NewPipeline(opts ...PipelineOption) *Pipeline { return pipeline.New(opts...) }

// WithLabel overrides the pipeline's report name.
func WithLabel(label string) PipelineOption { return pipeline.WithLabel(label) }

// WithBatcher swaps stage 1.
func WithBatcher(b Batcher) PipelineOption { return pipeline.WithBatcher(b) }

// WithSparsifier swaps stage 2; nil skips graph construction (for matchers
// that compute their own costs, e.g. the greedy matcher).
func WithSparsifier(s GraphSparsifier) PipelineOption { return pipeline.WithSparsifier(s) }

// WithReshuffler swaps stage 3; nil disables reshuffling.
func WithReshuffler(r Reshuffler) PipelineOption { return pipeline.WithReshuffler(r) }

// WithMatcher swaps stage 4.
func WithMatcher(m Matcher) PipelineOption { return pipeline.WithMatcher(m) }

// WithSingleOrderWhen installs the single-order-mode predicate (nil =
// capacity-based availability always).
func WithSingleOrderWhen(f func(*Config) bool) PipelineOption {
	return pipeline.WithSingleOrderWhen(f)
}

// NewClusterBatcher returns the paper's Algorithm 1 batcher (iterative
// clustering; degrades to singletons when cfg.Batching is off).
func NewClusterBatcher() Batcher { return pipeline.ClusterBatcher{} }

// NewSingletonBatcher returns the one-order-per-batch batcher.
func NewSingletonBatcher() Batcher { return pipeline.SingletonBatcher{} }

// NewSameRestaurantBatcher returns the Reyes-style batcher (orders may
// share a batch only when they come from the same restaurant).
func NewSameRestaurantBatcher() Batcher { return pipeline.SameRestaurantBatcher{} }

// NewGreedyBatcher returns the nearest-neighbour greedy batcher;
// radiusSec caps restaurant-to-restaurant joins (0 = config BatchRadius).
func NewGreedyBatcher(radiusSec float64) Batcher {
	return pipeline.GreedyBatcher{RadiusSec: radiusSec}
}

// NewBestFirstSparsifier returns the paper's Algorithm 2 FoodGraph
// construction (honours every Config ablation switch).
func NewBestFirstSparsifier() GraphSparsifier { return pipeline.BestFirstSparsifier{} }

// NewHaversineSparsifier returns the Reyes straight-line cost model;
// speedMS is the assumed travel speed (0 = 8.33 m/s). It attaches no route
// plans, so pair it with NewReyesMatcher — the plain KM matcher drops
// plan-less edges and would assign nothing.
func NewHaversineSparsifier(speedMS float64) GraphSparsifier {
	return pipeline.HaversineSparsifier{SpeedMS: speedMS}
}

// NewReyesMatcher returns the Kuhn–Munkres-then-replan matcher: matches on
// whatever costs the sparsifier produced, then rebuilds each matched
// batch's plan on the true road network (the matcher the Reyes baseline
// needs, since its Haversine graph carries no executable plans).
func NewReyesMatcher() Matcher { return pipeline.ReyesMatcher{} }

// NewIncumbentReshuffler returns the Section IV-D2 weight adjuster.
func NewIncumbentReshuffler() Reshuffler { return pipeline.IncumbentReshuffler{} }

// NewKMMatcher returns the Kuhn–Munkres matcher over the constructed graph.
func NewKMMatcher() Matcher { return &pipeline.KMMatcher{} }

// NewGreedyMatcher returns the Section III iterative minimum-marginal-cost
// matcher (computes its own costs; pair with WithSparsifier(nil)).
func NewGreedyMatcher() Matcher { return pipeline.GreedyMatcher{} }

// Unified Router backends. Any SPFunc is also a Router, and NewHubLabels'
// index implements Router directly (exact hub-label distances).

// NewDijkstraRouter returns the exact per-query Dijkstra backend (safe for
// concurrent use).
func NewDijkstraRouter(g *Graph) Router { return roadnet.NewDijkstraRouter(g) }

// NewBoundedRouter returns the bounded single-source backend with dense
// row memoisation — the pipeline's default; targets beyond boundSec report
// +Inf. Not safe for concurrent use.
func NewBoundedRouter(g *Graph, boundSec float64) Router {
	return roadnet.NewBoundedRouter(g, boundSec)
}

// NewCachedRouter decorates any Router with an LRU point-to-point memo of
// at most capacity entries (safe for concurrent use; e.g. wrap NewHubLabels
// for repeated within-window queries).
func NewCachedRouter(inner Router, capacity int) Router {
	return roadnet.NewLRURouter(inner, capacity)
}

// CityNames lists the Table II city presets.
func CityNames() []string { return workload.CityNames() }

// LoadCity builds a Table II city preset at the given scale (1.0 = paper
// size) deterministically from seed.
func LoadCity(name string, scale float64, seed int64) (*City, error) {
	return workload.Preset(name, scale, seed)
}

// GenerateCity builds a fully custom city.
func GenerateCity(p CityParams) (*City, error) { return workload.Generate(p) }

// OrderStream generates one deterministic day of orders for a city.
func OrderStream(c *City, seed int64) []*Order { return workload.OrderStream(c, seed) }

// OrderStreamWindow restricts generation to placement times in [from, to)
// seconds since midnight.
func OrderStreamWindow(c *City, seed int64, from, to float64) []*Order {
	return workload.OrderStreamWindow(c, seed, from, to)
}

// NewSimulator builds a simulator over a road network, an order stream, a
// fleet and a policy.
func NewSimulator(g *Graph, orders []*Order, fleet []*Vehicle, pol Policy, cfg *Config, opts SimOptions) (*Simulator, error) {
	return sim.New(g, orders, fleet, pol, cfg, opts)
}

// NewHubLabels builds the pruned-landmark-labeling distance index over a
// road network (the stand-in for the paper's hierarchical hub labels [18]).
func NewHubLabels(g *Graph) *HubLabels { return spindex.New(g) }

// ShortestPath returns the quickest travel time in seconds from -> to
// departing at time t (seconds since midnight).
func ShortestPath(g *Graph, from, to NodeID, t float64) float64 {
	return roadnet.ShortestPath(g, from, to, t)
}

// DefaultExperimentSetup is the bench-harness experiment operating point
// (DefaultScale, dinner peak, seed 1).
func DefaultExperimentSetup() ExperimentSetup { return experiments.DefaultSetup() }

// RunExperiment regenerates one of the paper's tables/figures by id (see
// ExperimentIDs); returns one table per panel.
func RunExperiment(id string, st ExperimentSetup) ([]*ExperimentTable, error) {
	return experiments.Generate(id, st)
}

// ExperimentIDs lists the available experiment groups.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentConfig returns the per-city default config used by the
// experiment drivers (∆ per city, KFactor scaled to the fleet).
func ExperimentConfig(cityName string, scale float64) *Config {
	return experiments.ConfigForScale(cityName, scale)
}

// Multi-day evaluation protocol re-exports (the paper's 5-day-learn /
// 1-day-test protocol of Section V-B).
type (
	// ProtocolOptions tunes the learn5test1 driver (city, policies,
	// scenarios, learning days, SLA threshold).
	ProtocolOptions = experiments.ProtocolOptions
	// ProtocolRun is one (scenario, policy) protocol outcome: test-day
	// metrics under the stale/learned/oracle weight regimes.
	ProtocolRun = experiments.ProtocolRun
	// ProtocolRegime indexes ProtocolRun.Metrics.
	ProtocolRegime = experiments.ProtocolRegime
	// DayPlan describes one day of a multi-day replay.
	DayPlan = workload.DayPlan
	// DaySchedule is a deterministic multi-day replay plan.
	DaySchedule = workload.DaySchedule
)

// The test-day weight regimes.
const (
	RegimeStale   = experiments.RegimeStale
	RegimeLearned = experiments.RegimeLearned
	RegimeOracle  = experiments.RegimeOracle
)

// RunLearn5Test1 executes the multi-day protocol and returns the structured
// per-cell results: weights are learned over the schedule's learning days
// (fleet churn and scenario-coupled demand surges included), exported to
// their JSON checkpoint form, re-imported, and the held-out test day is
// replayed once per policy per weight regime.
func RunLearn5Test1(st ExperimentSetup, opt ProtocolOptions) ([]*ProtocolRun, error) {
	return experiments.RunLearn5Test1(st, opt)
}

// RunLearn5Test1Tables is RunLearn5Test1 rendered as one table per scenario
// (XDT per regime, SLA violations, recovery ratio).
func RunLearn5Test1Tables(st ExperimentSetup, opt ProtocolOptions) ([]*ExperimentTable, error) {
	return experiments.Learn5Test1(st, opt)
}

// NewDaySchedule builds the canonical learnN+test1 schedule: learnDays
// learning days plus one held-out test day under one scenario, per-day
// order/fleet seeds derived from seed.
func NewDaySchedule(c *City, sc Scenario, learnDays int, seed int64) DaySchedule {
	return workload.Learn5Test1(c, sc, learnDays, seed)
}

// ReadSlotWeights loads a weight table serialised with SlotWeights.WriteJSON
// (validated cell by cell).
func ReadSlotWeights(r io.Reader) (*SlotWeights, error) {
	return roadnet.ReadSlotWeightsJSON(r)
}

// NewHubLabelRouter returns an EngineConfig.NewRouter factory for the
// hub-label backend: per-slot labels rebuild asynchronously on every weight
// epoch publish while a bounded-SSSP cache answers, the next slot
// pre-building ahead of the replay clock (23 wraps to 0 at midnight).
// syncBuild makes replays deterministic at the cost of per-slot build
// stalls.
func NewHubLabelRouter(spBound float64, syncBuild bool) func(*Graph) Router {
	return engine.NewHubLabelRouter(spBound, syncBuild)
}

// NewCCHRouter returns an EngineConfig.NewRouter factory for the
// customizable contraction hierarchy backend: topology preprocessing runs
// once, per-slot metrics customize lazily, and weight epochs published
// through the learner's incremental patch path re-customize only the dirty
// cells (O(dirty), not O(|E|)). The factory is stateful — use one per
// engine.
func NewCCHRouter() func(*Graph) Router {
	return engine.NewCCHRouter()
}

// Online dispatch engine re-exports: the concurrent, zone-sharded service
// that runs the assignment pipeline against a live order/vehicle stream.
type (
	// Engine is the online dispatcher (see internal/engine).
	Engine = engine.Engine
	// EngineConfig tunes the online engine (shards, queues, policy factory).
	EngineConfig = engine.Config
	// EngineMetrics is a point-in-time engine health/throughput snapshot.
	EngineMetrics = engine.Metrics
	// EngineShardMetrics is one zone shard's resident-state summary within
	// EngineMetrics.PerShard (round timings, queue depths, served epoch).
	EngineShardMetrics = engine.ShardMetrics
	// EngineRoundStats summarises one assignment round.
	EngineRoundStats = engine.RoundStats
	// AssignmentDecision is one published (vehicle, orders) decision.
	AssignmentDecision = engine.Decision
	// AssignmentStreamEvent is one message on the assignment stream.
	AssignmentStreamEvent = engine.StreamEvent
	// AssignmentSubscription consumes the assignment stream.
	AssignmentSubscription = engine.Subscription
)

// ErrEngineQueueFull is the engine's ingestion backpressure signal.
var ErrEngineQueueFull = engine.ErrQueueFull

// NewEngine builds the online dispatch engine over a road network and a
// fleet. Drive it with Start (real-time window clock) or Step (replay).
func NewEngine(g *Graph, fleet []*Vehicle, cfg EngineConfig) (*Engine, error) {
	return engine.New(g, fleet, cfg)
}

// Durability re-exports: the ingestion write-ahead log and the full engine
// checkpoint document (see internal/wal, internal/engine and the README's
// "Durability" section). The crash-safety contract: every accepted order and
// ping is WAL-appended before it is queued; a checkpoint taken at the round
// barrier captures the complete dispatch state (pools, scheduled orders,
// vehicle plans and mid-edge motion, counters, learned weights) plus the WAL
// high-waters, so boot = restore checkpoint + replay WAL records past the
// high-waters.
type (
	// WAL is the segmented, checksummed ingestion write-ahead log.
	WAL = wal.Log
	// WALOptions tunes WAL durability (fsync cadence) and metrics hooks.
	WALOptions = wal.Options
	// WALMetrics is the WAL's observability callback set (all fields
	// optional).
	WALMetrics = wal.Metrics
	// WALRecord is one logged ingestion event (an order or a ping).
	WALRecord = wal.Record
	// WALOrderRecord / WALPingRecord are the per-kind payloads.
	WALOrderRecord = wal.OrderRecord
	WALPingRecord  = wal.PingRecord
	// EngineCheckpoint is the versioned full-state document written by
	// Engine.WriteCheckpoint and consumed by Engine.RestoreCheckpoint.
	EngineCheckpoint = engine.Checkpoint
)

// WAL record kinds (WALRecord.Kind).
const (
	WALKindOrder = wal.KindOrder
	WALKindPing  = wal.KindPing
)

// ErrEngineUsed reports a restore attempted on an engine that already ran.
var ErrEngineUsed = engine.ErrEngineUsed

// NewObsRegistry returns an empty observability registry — pass it as
// EngineConfig.Obs to share one exposition surface between the engine and
// other instrumented components (foodmatchd adds its WAL counters to the
// same registry so GET /metrics.prom carries both).
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ObsExpBuckets returns n exponential histogram buckets starting at start
// with the given growth factor (for ObsRegistry.Histogram).
func ObsExpBuckets(start, factor float64, n int) []float64 {
	return obs.ExpBuckets(start, factor, n)
}

// OpenWAL opens (or creates) a write-ahead log in dir and replays every
// intact record from existing segments; pass the returned records to
// Engine.ReplayWAL after restoring a checkpoint.
func OpenWAL(dir string, opt WALOptions) (*WAL, []WALRecord, error) {
	return wal.Open(dir, opt)
}

// ReadEngineCheckpoint parses and version-checks a checkpoint document
// written by Engine.WriteCheckpoint.
func ReadEngineCheckpoint(r io.Reader) (*EngineCheckpoint, error) {
	return engine.ReadCheckpoint(r)
}

// GPS data pipeline re-exports (Section V-A: weights learned from pings).
type (
	// GPSPing is one GPS observation.
	GPSPing = gps.Ping
	// GPSDrive is a ground-truth timed traversal.
	GPSDrive = gps.Drive
	// GPSMatcher map-matches ping sequences onto a road network
	// (Newson–Krumm HMM).
	GPSMatcher = gps.Matcher
	// GPSMatchOptions tunes the matcher.
	GPSMatchOptions = gps.MatchOptions
	// SpeedLearner aggregates matched trajectories into per-edge per-slot
	// travel-time estimates.
	SpeedLearner = gps.SpeedLearner
)

// Dynamic road network re-exports: the live traffic plane that learns
// per-slot edge weights from vehicle movement and hot-swaps routers onto
// epoch-versioned snapshots (see internal/roadnet, internal/gps and the
// README's "Dynamic road network" section).
type (
	// SlotWeights is a sparse per-edge per-slot learned travel-time table;
	// apply it with Graph.Reweighted.
	SlotWeights = roadnet.SlotWeights
	// RoadSnapshot is one immutable weight epoch (epoch, graph, provenance).
	RoadSnapshot = roadnet.Snapshot
	// SwapRouter is the epoch-versioned Router: lock-free snapshot reads on
	// the query path, atomic hot-swap on publish.
	SwapRouter = roadnet.SwapRouter
	// StreamLearner is the online speed learner fed by live vehicle
	// observations (exact edge traversals, node pings, raw GPS chunks).
	StreamLearner = gps.StreamLearner
	// StreamLearnerOptions tunes the streaming learner.
	StreamLearnerOptions = gps.StreamOptions
	// StreamLearnerStats is a learner throughput snapshot.
	StreamLearnerStats = gps.StreamStats
	// SwapHubLabels is the epoch-versioned hub-label index: rebuilds run
	// asynchronously per slot while the previous epoch keeps serving.
	SwapHubLabels = spindex.SwapIndex
	// Scenario perturbs a city's true travel-time profile (rain, rush).
	Scenario = workload.Scenario
	// EngineRoadnetStatus is the engine's dynamic-road-network status
	// (epoch, slot, learner throughput) served by foodmatchd's /roadnet.
	EngineRoadnetStatus = engine.RoadnetStatus
)

// NewSlotWeights returns an empty learned-weight table.
func NewSlotWeights() *SlotWeights { return roadnet.NewSlotWeights() }

// NewSwapRouter returns an epoch-versioned Router over the base graph; each
// published epoch gets an inner backend from newRouter.
func NewSwapRouter(base *Graph, newRouter func(*Graph) Router) *SwapRouter {
	return roadnet.NewSwapRouter(base, newRouter)
}

// NewStreamLearner returns an empty streaming speed learner over g (safe
// for concurrent use; pass as EngineConfig.Learner or SimOptions.Learner).
func NewStreamLearner(g *Graph, opt StreamLearnerOptions) *StreamLearner {
	return gps.NewStreamLearner(g, opt)
}

// NewSwapHubLabels returns an epoch-versioned hub-label index over g.
func NewSwapHubLabels(g *Graph) *SwapHubLabels { return spindex.NewSwapIndex(g) }

// RainScenario returns a uniform all-day slowdown scenario.
func RainScenario(mult float64) Scenario { return workload.Rain(mult) }

// DinnerRushScenario slows the 18:00–22:00 window by factor.
func DinnerRushScenario(factor float64) Scenario { return workload.DinnerRush(factor) }

// ParseScenario parses "none", "rain:<mult>", "rush:<factor>" or a
// comma-joined combination.
func ParseScenario(s string) (Scenario, error) { return workload.ParseScenario(s) }

// SynthesizePings emits noisy GPS observations along a drive.
func SynthesizePings(g *Graph, d GPSDrive, intervalSec, sigmaM float64, rng *rand.Rand) []GPSPing {
	return gps.Synthesize(g, d, intervalSec, sigmaM, rng)
}

// NewGPSMatcher builds an HMM map-matcher for g.
func NewGPSMatcher(g *Graph, opt GPSMatchOptions) *GPSMatcher { return gps.NewMatcher(g, opt) }

// DefaultGPSMatchOptions mirrors the Newson–Krumm parameterisation.
func DefaultGPSMatchOptions() GPSMatchOptions { return gps.DefaultMatchOptions() }

// NewSpeedLearner returns an empty per-edge per-slot travel-time learner.
func NewSpeedLearner(g *Graph) *SpeedLearner { return gps.NewSpeedLearner(g) }

// RoadPath computes the quickest executable path departing at time t, with
// per-node arrival times (the input shape SpeedLearner and GPSDrive use).
func RoadPath(g *Graph, from, to NodeID, t float64) *roadnet.PathResult {
	return roadnet.Path(g, from, to, t)
}
