package foodmatch

import (
	"context"
	"testing"
	"time"
)

// replayCity runs a CityB dinner-peak replay at the given scale and window
// under the given policy and router, returning the metrics.
func replayCity(t *testing.T, scale, from, to float64, pol Policy, router Router) *Metrics {
	t.Helper()
	city, err := LoadCity("CityB", scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig("CityB", scale)
	orders := OrderStreamWindow(city, 1, from, to)
	fleet := city.Fleet(1.0, cfg.MaxO, 1)
	s, err := NewSimulator(city.G, orders, fleet, pol, cfg, SimOptions{Quiet: true, Router: router})
	if err != nil {
		t.Fatal(err)
	}
	return s.Run(from, to)
}

// replayCityB is replayCity at the standard dinner-peak operating point.
func replayCityB(t *testing.T, pol Policy, router Router) *Metrics {
	return replayCity(t, 0.02, 19.0*3600, 21.0*3600, pol, router)
}

func requireIdentical(t *testing.T, what string, a, b *Metrics) {
	t.Helper()
	if a.Delivered != b.Delivered || a.Rejected != b.Rejected ||
		a.XDTSec != b.XDTSec || a.DistM != b.DistM ||
		a.WaitSec != b.WaitSec || a.Reassignments != b.Reassignments {
		t.Fatalf("%s not decision-identical:\n%s\n%s", what, a.Summary(), b.Summary())
	}
}

// TestNewPipelineMatchesFoodMatch is the acceptance bar of the pipeline
// API: a CityB dinner-peak replay through the NewPipeline-composed
// FOODMATCH is decision-identical to the canned NewFoodMatch policy —
// same assignments, same Metrics.
func TestNewPipelineMatchesFoodMatch(t *testing.T) {
	stock := replayCityB(t, NewFoodMatch(), nil)
	composed := replayCityB(t, NewPipeline(), nil)
	requireIdentical(t, "NewPipeline vs NewFoodMatch", stock, composed)
	if stock.Delivered == 0 {
		t.Fatal("replay delivered nothing; workload broken")
	}
}

// requireClose tolerates the last-ulp differences of the hub-label backend
// (a label distance is the sum of two half-path distances; the float
// rounding can flip exact cost ties and nudge a handful of decisions).
func requireClose(t *testing.T, what string, a, b *Metrics) {
	t.Helper()
	within := func(x, y, frac float64) bool {
		if x == y {
			return true
		}
		d := x - y
		if d < 0 {
			d = -d
		}
		return d <= frac*x
	}
	// Tie flips cascade through reshuffling, so XDT is held to a per-order
	// absolute budget (one η unit) rather than a tight fraction.
	xdtDiff := a.XDTSec - b.XDTSec
	if xdtDiff < 0 {
		xdtDiff = -xdtDiff
	}
	if !within(float64(a.Delivered), float64(b.Delivered), 0.02) ||
		xdtDiff > 60*float64(a.TotalOrders) || !within(a.DistM, b.DistM, 0.05) {
		t.Fatalf("%s diverged beyond tie-break noise:\n%s\n%s", what, a.Summary(), b.Summary())
	}
}

// TestRouterBackendsSwappable is the other acceptance bar: hub-label and
// Dijkstra Router backends swap in via a single option. Dijkstra-family
// backends replay decision-identically to the default bounded cache; hub
// labels are exact too but may flip floating-point cost ties, so they are
// held to near-equality.
func TestRouterBackendsSwappable(t *testing.T) {
	// A compact operating point: the per-query Dijkstra backend memoises
	// nothing, so a full-size replay would dominate the suite's runtime.
	const scale, from, to = 0.01, 19.0 * 3600, 20.0 * 3600
	city, err := LoadCity("CityB", scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := replayCity(t, scale, from, to, NewFoodMatch(), nil)
	if ref.Delivered == 0 {
		t.Fatal("reference replay delivered nothing")
	}
	dij := replayCity(t, scale, from, to, NewFoodMatch(), NewDijkstraRouter(city.G))
	requireIdentical(t, "dijkstra router vs default", ref, dij)
	lru := replayCity(t, scale, from, to, NewFoodMatch(), NewCachedRouter(NewDijkstraRouter(city.G), 1<<16))
	requireIdentical(t, "cached dijkstra router vs default", ref, lru)
	hub := replayCity(t, scale, from, to, NewFoodMatch(), NewHubLabels(city.G))
	requireClose(t, "hub-label router vs default", ref, hub)
	cachedHub := replayCity(t, scale, from, to, NewFoodMatch(), NewCachedRouter(NewHubLabels(city.G), 1<<16))
	requireIdentical(t, "cached hub labels vs raw hub labels", hub, cachedHub)
}

// TestSimulatorContextCancellation: a cancelled context stops the replay
// early with consistent (partial) metrics.
func TestSimulatorContextCancellation(t *testing.T) {
	city, err := LoadCity("CityB", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	from, to := 19.0*3600, 21.0*3600
	cfg := ExperimentConfig("CityB", 0.02)
	orders := OrderStreamWindow(city, 1, from, to)
	fleet := city.Fleet(1.0, cfg.MaxO, 1)
	s, err := NewSimulator(city.G, orders, fleet, NewFoodMatch(), cfg, SimOptions{Quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	m := s.RunContext(ctx, from, to)
	if m.Delivered != 0 {
		t.Fatalf("cancelled-before-start replay delivered %d orders", m.Delivered)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("partial metrics inconsistent: %v", err)
	}
}
