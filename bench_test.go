// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V). Each benchmark regenerates its artefact through
// the same drivers cmd/experiments uses, at a compact operating point
// (small scale, City B, a two-hour dinner slice) so the full suite stays
// laptop-friendly; run cmd/experiments for the full-size tables.
//
// Benchmarks report headline values via b.ReportMetric so the shape
// comparison with the paper lands directly in the -bench output; run with
// -v to see the full rendered tables.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig6c -v
package foodmatch

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/experiments"
)

// benchSetup is the compact operating point shared by the macro-benchmarks.
func benchSetup() experiments.Setup {
	st := experiments.DefaultSetup()
	st.Scale = 0.02
	st.StartHour = 19
	st.EndHour = 22
	st.Cities = []string{"CityB"}
	return st
}

// runExperiment executes an experiment group once per bench iteration and
// returns the final iteration's tables.
func runExperiment(b *testing.B, id string, st experiments.Setup) []*experiments.Table {
	b.Helper()
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Generate(id, st)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
	if testing.Verbose() {
		for _, t := range tables {
			b.Log("\n" + t.Render())
		}
	}
	return tables
}

// cell fetches a value from the named table, by row label and column index.
func cell(b *testing.B, tables []*experiments.Table, tableID, rowLabel string, col int) float64 {
	b.Helper()
	for _, t := range tables {
		if t.ID != tableID {
			continue
		}
		for _, r := range t.Rows {
			if r.Label == rowLabel && col < len(r.Values) {
				return r.Values[col]
			}
		}
	}
	b.Fatalf("cell %s/%s[%d] not found", tableID, rowLabel, col)
	return math.NaN()
}

func BenchmarkTable2_DatasetSummary(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "T2", st)
	b.ReportMetric(cell(b, tables, "T2", "CityB", 2), "orders/day")
	b.ReportMetric(cell(b, tables, "T2", "CityB", 3), "prep-min")
}

func BenchmarkFig4a_PercentileRank(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F4a", st)
	// Paper shape: the mass concentrates in the lowest ranks (~95% within
	// the closest 10%).
	b.ReportMetric(cell(b, tables, "F4a", "rank <= 10%", 0), "%assign<=rank10")
	b.ReportMetric(cell(b, tables, "F4a", "rank <= 30%", 0), "%assign<=rank30")
}

func BenchmarkFig6a_OrderVehicleRatio(b *testing.B) {
	st := benchSetup()
	st.Cities = nil // all three cities; generation only, cheap
	tables := runExperiment(b, "F6a", st)
	b.ReportMetric(cell(b, tables, "F6a", "CityB", 20), "cityB-20h-ratio")
	b.ReportMetric(cell(b, tables, "F6a", "CityB", 3), "cityB-03h-ratio")
}

func BenchmarkFig6b_XDTvsReyes(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F6b", st)
	b.ReportMetric(cell(b, tables, "F6b", "CityB", 2), "reyes/foodmatch-xdt-ratio")
}

func BenchmarkFig6c_XDTvsGreedy(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F6cde", st)
	b.ReportMetric(cell(b, tables, "F6c", "CityB", 2), "improv%")
}

func BenchmarkFig6d_OrdersPerKm(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F6cde", st)
	b.ReportMetric(cell(b, tables, "F6d", "CityB", 2), "improv%")
}

func BenchmarkFig6e_WaitingTime(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F6cde", st)
	b.ReportMetric(cell(b, tables, "F6e", "CityB", 2), "improv%")
}

func BenchmarkFig6f_OverflowAll(b *testing.B) {
	st := benchSetup()
	st.ComputeBudget = 0.05
	tables := runExperiment(b, "F6fgh", st)
	b.ReportMetric(cell(b, tables, "F6f", "CityB", 0), "greedy-overflow%")
	b.ReportMetric(cell(b, tables, "F6f", "CityB", 2), "foodmatch-overflow%")
}

func BenchmarkFig6g_OverflowPeak(b *testing.B) {
	st := benchSetup()
	st.ComputeBudget = 0.05
	tables := runExperiment(b, "F6fgh", st)
	b.ReportMetric(cell(b, tables, "F6g", "CityB", 1), "km-peak-overflow%")
	b.ReportMetric(cell(b, tables, "F6g", "CityB", 2), "foodmatch-peak-overflow%")
}

func BenchmarkFig6h_RunningTime(b *testing.B) {
	st := benchSetup()
	st.ComputeBudget = 0.05
	tables := runExperiment(b, "F6fgh", st)
	b.ReportMetric(cell(b, tables, "F6h", "CityB", 0), "greedy-ms")
	b.ReportMetric(cell(b, tables, "F6h", "CityB", 1), "km-ms")
	b.ReportMetric(cell(b, tables, "F6h", "CityB", 2), "foodmatch-ms")
}

func BenchmarkFig6i_XDTImprovementBySlot(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F6ijk", st)
	b.ReportMetric(cell(b, tables, "F6i", "CityB", 1), "slot20-improv%")
}

func BenchmarkFig6j_OKmImprovementBySlot(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F6ijk", st)
	b.ReportMetric(cell(b, tables, "F6j", "CityB", 1), "slot20-improv%")
}

func BenchmarkFig6k_WTImprovementBySlot(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F6ijk", st)
	b.ReportMetric(cell(b, tables, "F6k", "CityB", 1), "slot20-improv%")
}

func BenchmarkFig7a_OptimizationAblation(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F7a", st)
	b.ReportMetric(cell(b, tables, "F7a", "CityB", 0), "B&R-improv%")
	b.ReportMetric(cell(b, tables, "F7a", "CityB", 2), "full-improv%")
}

func BenchmarkFig7b_XDTvsFleet(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F7bcde", st)
	b.ReportMetric(cell(b, tables, "F7b", "CityB", 0), "xdt-h@20%fleet")
	b.ReportMetric(cell(b, tables, "F7b", "CityB", 4), "xdt-h@100%fleet")
}

func BenchmarkFig7c_OKmVsFleet(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F7bcde", st)
	b.ReportMetric(cell(b, tables, "F7c", "CityB", 1), "okm@40%fleet")
	b.ReportMetric(cell(b, tables, "F7c", "CityB", 4), "okm@100%fleet")
}

func BenchmarkFig7d_WTvsFleet(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F7bcde", st)
	b.ReportMetric(cell(b, tables, "F7d", "CityB", 1), "wt-h@40%fleet")
	b.ReportMetric(cell(b, tables, "F7d", "CityB", 4), "wt-h@100%fleet")
}

func BenchmarkFig7e_RejectionsVsFleet(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F7bcde", st)
	b.ReportMetric(cell(b, tables, "F7e", "CityB", 0), "rej%@20%fleet")
	b.ReportMetric(cell(b, tables, "F7e", "CityB", 4), "rej%@100%fleet")
}

func BenchmarkFig8ac_EtaSweep(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F8ac", st)
	last := len(experiments.EtaValues) - 1
	b.ReportMetric(cell(b, tables, "F8a", "CityB", 0), "xdt-h@eta30")
	b.ReportMetric(cell(b, tables, "F8a", "CityB", last), "xdt-h@eta150")
	b.ReportMetric(cell(b, tables, "F8c", "CityB", 0), "wt-h@eta30")
	b.ReportMetric(cell(b, tables, "F8c", "CityB", last), "wt-h@eta150")
}

func BenchmarkFig8dg_DeltaSweep(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F8dg", st)
	last := len(experiments.DeltaValues) - 1
	b.ReportMetric(cell(b, tables, "F8d", "CityB", 0), "xdt-h@delta60")
	b.ReportMetric(cell(b, tables, "F8d", "CityB", last), "xdt-h@delta240")
	b.ReportMetric(cell(b, tables, "F8g", "CityB", last), "assign-ms@delta240")
}

func BenchmarkFig8hk_KSweep(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F8hk", st)
	last := len(experiments.KFactorValues) - 1
	b.ReportMetric(cell(b, tables, "F8h", "CityB", 0), "xdt-h@k50")
	b.ReportMetric(cell(b, tables, "F8h", "CityB", last), "xdt-h@k300")
	b.ReportMetric(cell(b, tables, "F8k", "CityB", 0), "assign-ms@k50")
	b.ReportMetric(cell(b, tables, "F8k", "CityB", last), "assign-ms@k300")
}

func BenchmarkFig9ac_GammaSweep(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F9ac", st)
	last := len(experiments.GammaValues) - 1
	b.ReportMetric(cell(b, tables, "F9b", "CityB", 0), "okm@gamma0.1")
	b.ReportMetric(cell(b, tables, "F9b", "CityB", last), "okm@gamma0.9")
	b.ReportMetric(cell(b, tables, "F9c", "CityB", 0), "wt-h@gamma0.1")
	b.ReportMetric(cell(b, tables, "F9c", "CityB", last), "wt-h@gamma0.9")
}

func BenchmarkFig9d_GammaRejections(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "F9d", st)
	b.ReportMetric(cell(b, tables, "F9d", "gamma=0.1", 0), "rej%@g0.1-10%fleet")
	b.ReportMetric(cell(b, tables, "F9d", "gamma=0.9", 0), "rej%@g0.9-10%fleet")
}

// Example of reading the harness programmatically (also exercises the
// public facade's experiment API).
func ExampleRunExperiment() {
	st := DefaultExperimentSetup()
	st.Scale = 0.005
	st.StartHour, st.EndHour = 20, 21
	st.Cities = []string{"CityA"}
	tables, err := RunExperiment("T2", st)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(tables[0].ID)
	// Output: T2
}

// --- Beyond-paper ablation benchmarks (X-series, DESIGN.md 2.10-2.11) ---

func BenchmarkX1_SupplyCalibration(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "X1", st)
	b.ReportMetric(cell(b, tables, "X1", "improv(%)", 0), "improv%@ratio2")
	b.ReportMetric(cell(b, tables, "X1", "improv(%)", 2), "improv%@ratio5.5")
}

func BenchmarkX2_AgeNeutralAblation(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "X2", st)
	b.ReportMetric(cell(b, tables, "X2", "age-neutral on", 0), "rejected-on")
	b.ReportMetric(cell(b, tables, "X2", "age-neutral off", 0), "rejected-off")
}

func BenchmarkX3_BatchRadius(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "X3", st)
	b.ReportMetric(cell(b, tables, "X3", "radius=300s", 2), "assign-ms@300s")
	b.ReportMetric(cell(b, tables, "X3", "radius=inf", 2), "assign-ms@inf")
}

func BenchmarkX4_SPEngines(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "X4", st)
	b.ReportMetric(cell(b, tables, "X4", "hub labels (PLL)", 0), "pll-us")
	b.ReportMetric(cell(b, tables, "X4", "pairwise Dijkstra", 0), "dijkstra-us")
}

func BenchmarkX5_HeuristicPlanner(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "X5", st)
	b.ReportMetric(cell(b, tables, "X5", "exact B&B", 1), "exact-ms")
	b.ReportMetric(cell(b, tables, "X5", "cheapest insertion", 1), "heuristic-ms")
}

func BenchmarkX6_TimeDependence(b *testing.B) {
	st := benchSetup()
	tables := runExperiment(b, "X6", st)
	b.ReportMetric(cell(b, tables, "X6", "congested (paper)", 0), "obj-h-congested")
	b.ReportMetric(cell(b, tables, "X6", "free-flow", 0), "obj-h-freeflow")
}

func BenchmarkX7_LearnedWeights(b *testing.B) {
	st := benchSetup()
	st.StartHour, st.EndHour = 19, 21 // X7 trains a matcher too; keep it short
	tables := runExperiment(b, "X7", st)
	b.ReportMetric(cell(b, tables, "X7", "perfect weights", 0), "obj-h-perfect")
}
