// Dinner rush: the scenario the paper's introduction motivates. During the
// 19:00–22:00 peak, City B receives several times more orders per hour than
// there are free riders; this example runs all four assignment strategies
// over the rush and shows how batching and matching keep the system
// serviceable while the baselines shed or delay orders.
package main

import (
	"fmt"
	"log"
	"strings"

	foodmatch "repro"
)

func main() {
	const (
		cityName = "CityB"
		seed     = 1
		fromH    = 19.0
		toH      = 22.0
	)
	city, err := foodmatch.LoadCity(cityName, foodmatch.DefaultScale, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Dinner rush in %s (%02.0f:00-%02.0f:00)\n", cityName, fromH, toH)
	ordersPreview := foodmatch.OrderStreamWindow(city, seed, fromH*3600, toH*3600)
	fleetPreview := city.Fleet(1.0, 3, seed)
	active := 0
	for _, v := range fleetPreview {
		if v.Active(20.5 * 3600) {
			active++
		}
	}
	fmt.Printf("%d orders vs %d riders active at 20:30 — %.1f orders per active rider per hour\n\n",
		len(ordersPreview), active, float64(len(ordersPreview))/3/float64(active))

	fmt.Printf("%-10s %9s %9s %9s %8s %8s %7s\n",
		"policy", "delivered", "rejected", "xdt(h)", "obj(h)", "wait(h)", "o/km")
	fmt.Println(strings.Repeat("-", 66))

	for _, name := range []string{"foodmatch", "greedy", "km", "reyes"} {
		pol, err := foodmatch.PolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := foodmatch.ExperimentConfig(cityName, foodmatch.DefaultScale)
		if name == "km" {
			foodmatch.ConfigureVanillaKM(cfg)
		}
		// Fresh copies per policy: the simulator mutates orders and fleet.
		orders := foodmatch.OrderStreamWindow(city, seed, fromH*3600, toH*3600)
		fleet := city.Fleet(1.0, cfg.MaxO, seed)
		sim, err := foodmatch.NewSimulator(city.G, orders, fleet, pol, cfg, foodmatch.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		m := sim.Run(fromH*3600, toH*3600)
		fmt.Printf("%-10s %9d %9d %9.1f %8.1f %8.1f %7.3f\n",
			pol.Name(), m.Delivered, m.Rejected, m.XDTHours(), m.ObjectiveHours(),
			m.WaitHours(), m.OrdersPerKm())
	}

	fmt.Println("\nReading the table:")
	fmt.Println("  - FoodMatch serves the rush with (near-)zero rejections and the lowest objective;")
	fmt.Println("    its batches carry more orders per km and waste far less driver time at restaurants.")
	fmt.Println("  - Vanilla KM cannot batch (one order per rider trip) and sheds a large share of the peak.")
	fmt.Println("  - Greedy stacks orders but its locally-optimal choices and lack of reshuffling cost it.")
	fmt.Println("  - Reyes decides on straight-line distances and same-restaurant batches only.")
}
