// Online-dispatch replays a CityB dinner-peak order stream through the
// online engine API in real time: orders are submitted at the wall-clock
// moment their placement time maps to, the engine's window clock fires an
// assignment round every ∆ simulation seconds, and a subscriber consumes
// the live assignment stream. At the end the online run is compared against
// the offline discrete-event simulator on the identical workload — the
// numbers converge because the engine runs the same pipeline, just under
// wall-clock pressure and across zone shards.
//
// cmd/foodmatchd exposes the same engine over HTTP/JSON; this example
// drives the Go API directly so it stays a single process.
package main

import (
	"fmt"
	"os"
	"time"

	foodmatch "repro"
)

func main() {
	const (
		cityName  = "CityB"
		seed      = 1
		shards    = 4
		timeScale = 600.0 // 10 simulated minutes per wall second
		startSim  = 18.5 * 3600
		endSim    = 19.5 * 3600
	)

	city, err := foodmatch.LoadCity(cityName, foodmatch.DefaultScale, seed)
	if err != nil {
		fail(err)
	}
	cfg := foodmatch.ExperimentConfig(cityName, foodmatch.DefaultScale)
	orders := foodmatch.OrderStreamWindow(city, seed, startSim, endSim)
	fleet := city.Fleet(1.0, cfg.MaxO, seed)
	fmt.Printf("replaying %d %s orders (18:30–19:30) over %d vehicles, %d shards, ∆=%.0fs, %.0fx speed\n\n",
		len(orders), cityName, len(fleet), shards, cfg.Delta, timeScale)

	eng, err := foodmatch.NewEngine(city.G, fleet, foodmatch.EngineConfig{
		Pipeline: cfg.Clone(),
		Shards:   shards,
	})
	if err != nil {
		fail(err)
	}

	// Consume the assignment stream while the engine runs.
	sub := eng.Subscribe(4096)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		decisions, printed := 0, 0
		for ev := range sub.C {
			switch {
			case ev.Decision != nil:
				decisions++
				if printed < 8 {
					printed++
					fmt.Printf("  %8.0fs  shard %d  vehicle %-4d <- orders %v\n",
						ev.Decision.T, ev.Decision.Shard, ev.Decision.Vehicle, ev.Decision.Orders)
				} else if printed == 8 {
					printed++
					fmt.Println("  ... (stream continues)")
				}
			case ev.Round != nil && ev.Round.PoolSize > 0:
				fmt.Printf("  round @%6.0fs: pool %-3d vehicles %-3d assigned %-3d handoffs %-2d latency %5.1fms\n",
					ev.Round.T, ev.Round.PoolSize, ev.Round.AvailableVehicles,
					ev.Round.AssignedOrders, ev.Round.Handoffs, ev.Round.LatencySec*1000)
			}
		}
		fmt.Printf("\nassignment stream closed after %d decisions\n", decisions)
	}()

	// Producer: submit each order at the wall instant its placement maps to.
	if err := eng.Start(startSim, timeScale); err != nil {
		fail(err)
	}
	wall0 := time.Now()
	for _, o := range orders {
		at := time.Duration((o.PlacedAt - startSim) / timeScale * float64(time.Second))
		if d := time.Until(wall0.Add(at)); d > 0 {
			time.Sleep(d)
		}
		for {
			err := eng.SubmitOrder(o)
			if err != foodmatch.ErrEngineQueueFull {
				if err != nil {
					fail(err)
				}
				break
			}
			time.Sleep(10 * time.Millisecond) // backpressure: retry
		}
	}

	// Drain: let in-flight deliveries finish (bounded).
	deadline := time.Now().Add(2 * time.Minute)
	for !eng.Idle() && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
	}
	eng.Stop()
	<-streamDone
	online := eng.Snapshot()

	// Offline reference: the discrete-event simulator on the same workload.
	simOrders := foodmatch.OrderStreamWindow(city, seed, startSim, endSim)
	simFleet := city.Fleet(1.0, cfg.MaxO, seed)
	s, err := foodmatch.NewSimulator(city.G, simOrders, simFleet, foodmatch.NewFoodMatch(),
		cfg.Clone(), foodmatch.SimOptions{Quiet: true})
	if err != nil {
		fail(err)
	}
	offline := s.Run(startSim, endSim)

	fmt.Println("\n                     online engine   offline simulator")
	row := func(label string, a, b float64, format string) {
		fmt.Printf("%-20s %14s %19s\n", label,
			fmt.Sprintf(format, a), fmt.Sprintf(format, b))
	}
	row("orders", float64(online.OrdersAdmitted), float64(offline.TotalOrders), "%.0f")
	row("delivered", float64(online.Delivered), float64(offline.Delivered), "%.0f")
	row("rejected", float64(online.Rejected), float64(offline.Rejected), "%.0f")
	row("XDT (h)", online.XDTSec/3600, offline.XDTHours(), "%.2f")
	row("distance (km)", online.DistKm, offline.DistM/1000, "%.1f")
	fmt.Printf("\nonline extras: %d rounds, mean %.1f ms, max %.1f ms, %d zone handoffs, %.1f orders/sim-min\n",
		online.Rounds, online.RoundSecMean*1000, online.RoundSecMax*1000,
		online.Handoffs, online.OrdersPerSimSec*60)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "online-dispatch:", err)
	os.Exit(1)
}
