// Parameter tuning: how the FOODMATCH knobs trade customer experience
// against operational efficiency (the Section V-H analysis). The example
// sweeps the batching cutoff η and the angular blend γ on City C and prints
// the trade-off tables an operator would tune from.
package main

import (
	"fmt"
	"log"
	"strings"

	foodmatch "repro"
)

const (
	cityName = "CityC"
	seed     = 5
	fromH    = 19.0
	toH      = 21.0
)

func runWith(city *foodmatch.City, mutate func(*foodmatch.Config)) *foodmatch.Metrics {
	cfg := foodmatch.ExperimentConfig(cityName, foodmatch.DefaultScale)
	mutate(cfg)
	orders := foodmatch.OrderStreamWindow(city, seed, fromH*3600, toH*3600)
	fleet := city.Fleet(1.0, cfg.MaxO, seed)
	sim, err := foodmatch.NewSimulator(city.G, orders, fleet,
		foodmatch.NewFoodMatch(), cfg, foodmatch.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return sim.Run(fromH*3600, toH*3600)
}

func main() {
	city, err := foodmatch.LoadCity(cityName, foodmatch.DefaultScale, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Parameter tuning on %s (%02.0f:00-%02.0f:00, FOODMATCH)\n\n", cityName, fromH, toH)

	// η: how much detour a batch may absorb. Low η = customer-first
	// (fewer, tighter batches); high η = efficiency-first.
	fmt.Println("batching cutoff η (seconds): customer experience vs efficiency")
	fmt.Printf("%8s %9s %8s %8s %7s\n", "eta", "xdt(h)", "obj(h)", "wait(h)", "o/km")
	fmt.Println(strings.Repeat("-", 45))
	for _, eta := range []float64{30, 60, 90, 120, 150} {
		m := runWith(city, func(c *foodmatch.Config) { c.Eta = eta })
		fmt.Printf("%8.0f %9.1f %8.1f %8.1f %7.3f\n",
			eta, m.XDTHours(), m.ObjectiveHours(), m.WaitHours(), m.OrdersPerKm())
	}
	fmt.Println("(the paper recommends η = 60 s: past it, O/Km and WT gains flatten while XDT keeps rising)")

	// γ: travel time vs direction-of-travel in the FoodGraph search.
	fmt.Println("\nangular blend γ (Eq. 8): 0 = pure direction, 1 = pure travel time")
	fmt.Printf("%8s %9s %8s %8s %7s %10s\n", "gamma", "xdt(h)", "obj(h)", "wait(h)", "o/km", "rejected")
	fmt.Println(strings.Repeat("-", 56))
	for _, gamma := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		m := runWith(city, func(c *foodmatch.Config) { c.Gamma = gamma })
		fmt.Printf("%8.2f %9.1f %8.1f %8.1f %7.3f %10d\n",
			gamma, m.XDTHours(), m.ObjectiveHours(), m.WaitHours(), m.OrdersPerKm(), m.Rejected)
	}
	fmt.Println("(γ = 0.5 balances the two; the paper shows extreme γ starves batching and, at")
	fmt.Println(" small fleets, drives up rejections — Fig. 9)")

	// ∆: the accumulation window.
	fmt.Println("\naccumulation window ∆ (seconds)")
	fmt.Printf("%8s %9s %8s %8s %7s %12s\n", "delta", "xdt(h)", "obj(h)", "wait(h)", "o/km", "assign(ms)")
	fmt.Println(strings.Repeat("-", 58))
	for _, delta := range []float64{60, 120, 180, 240} {
		m := runWith(city, func(c *foodmatch.Config) { c.Delta = delta })
		fmt.Printf("%8.0f %9.1f %8.1f %8.1f %7.3f %12.1f\n",
			delta, m.XDTHours(), m.ObjectiveHours(), m.WaitHours(), m.OrdersPerKm(),
			1000*m.MeanAssignSec())
	}
	fmt.Println("(longer windows batch better but delay assignment; the paper lands on 3 min for the")
	fmt.Println(" big cities and 1 min for City A — Fig. 8(d-g))")
}
