// Fleet sizing: the Fig. 7(b–e) question — how many riders does a city
// actually need? This example sweeps the deployed fraction of City B's
// roster under FOODMATCH and prints the delivery-quality / economics
// trade-off, locating the knee where adding riders stops helping.
package main

import (
	"fmt"
	"log"
	"strings"

	foodmatch "repro"
)

func main() {
	const (
		cityName = "CityB"
		seed     = 3
		fromH    = 19.0
		toH      = 22.0
	)
	city, err := foodmatch.LoadCity(cityName, foodmatch.DefaultScale, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fleet sizing study — %s dinner peak, FOODMATCH\n\n", cityName)
	fmt.Printf("%6s %7s %9s %9s %9s %8s %8s %7s\n",
		"fleet", "riders", "delivered", "rejected", "xdt(h)", "obj(h)", "wait(h)", "o/km")
	fmt.Println(strings.Repeat("-", 70))

	type point struct {
		frac float64
		obj  float64
	}
	var curve []point
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		cfg := foodmatch.ExperimentConfig(cityName, foodmatch.DefaultScale)
		orders := foodmatch.OrderStreamWindow(city, seed, fromH*3600, toH*3600)
		fleet := city.Fleet(frac, cfg.MaxO, seed)
		sim, err := foodmatch.NewSimulator(city.G, orders, fleet,
			foodmatch.NewFoodMatch(), cfg, foodmatch.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		m := sim.Run(fromH*3600, toH*3600)
		fmt.Printf("%5.0f%% %7d %9d %9d %9.1f %8.1f %8.1f %7.3f\n",
			frac*100, len(fleet), m.Delivered, m.Rejected, m.XDTHours(),
			m.ObjectiveHours(), m.WaitHours(), m.OrdersPerKm())
		curve = append(curve, point{frac, m.ObjectiveHours()})
	}

	// Locate the knee: the first fleet size whose marginal improvement per
	// added 20% of roster drops below 20% of the total span.
	span := curve[0].obj - curve[len(curve)-1].obj
	knee := curve[len(curve)-1].frac
	for i := 1; i < len(curve); i++ {
		if gain := curve[i-1].obj - curve[i].obj; span > 0 && gain < 0.2*span {
			knee = curve[i-1].frac
			break
		}
	}
	fmt.Printf("\nknee of the curve: ~%.0f%% of the roster — beyond it extra riders buy little\n", knee*100)
	fmt.Println("(the paper reads the same shape from Fig. 7(b): XDT flattens past ~40% fleet,")
	fmt.Println(" while at 20% fleet the rejection rate explodes and distorts O/Km and WT)")
}
