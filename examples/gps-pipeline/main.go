// GPS pipeline: the data side of the paper. Swiggy's road-network weights
// are produced by map-matching rider GPS pings and averaging travel times
// per edge per hourly slot (Section V-A). This example runs that loop on
// synthetic ground truth — drive, ping, match, learn — then shows what the
// learned weights cost the dispatcher: FOODMATCH decides on the learned
// network while the world runs on the true one.
package main

import (
	"fmt"
	"log"
	"math/rand"

	foodmatch "repro"
	"repro/internal/gps"
	"repro/internal/roadnet"
)

func main() {
	city, err := foodmatch.LoadCity("CityB", 0.01, 1)
	if err != nil {
		log.Fatal(err)
	}
	g := city.G
	rng := rand.New(rand.NewSource(42))

	// 1. Drive: riders traverse shortest paths at various hours.
	// 2. Ping: GPS observations every 20 s with 20 m noise.
	// 3. Match: Newson-Krumm HMM recovers the road path.
	// 4. Learn: per-edge per-slot travel-time averages.
	matcher := gps.NewMatcher(g, gps.DefaultMatchOptions())
	learner := gps.NewSpeedLearner(g)
	matched, attempted := 0, 0
	var accSum float64
	for i := 0; i < 300; i++ {
		from := city.Restaurants[rng.Intn(len(city.Restaurants))]
		to := roadnet.NodeID(rng.Intn(g.NumNodes()))
		hour := []float64{9, 12, 13, 19, 20, 21}[rng.Intn(6)]
		p := roadnet.Path(g, from, to, hour*3600)
		if p == nil || len(p.Nodes) < 4 {
			continue
		}
		attempted++
		drive := gps.Drive{Nodes: p.Nodes, Times: p.Times}
		pings := gps.Synthesize(g, drive, 20, 20, rng)
		path, ok := matcher.Match(pings)
		if !ok {
			continue
		}
		matched++
		accSum += gps.Accuracy(g, drive, pings, path, 150)
		times := make([]float64, len(pings))
		for j := range pings {
			times[j] = pings[j].T
		}
		learner.ObserveDrive(path, times)
	}
	mae, cells := learner.MeanAbsErrorSec(2)
	fmt.Printf("map matching: %d/%d drives matched, mean accuracy %.0f%% (within 150 m)\n",
		matched, attempted, 100*accSum/float64(matched))
	fmt.Printf("speed learning: %d (edge,slot) cells, MAE %.1f s vs ground truth\n\n", cells, mae)

	// 5. Decide on learned weights, execute on reality.
	lg, err := learner.LearnedGraph(2)
	if err != nil {
		log.Fatal(err)
	}
	from, to := 19.0*3600, 21.0*3600
	for _, variant := range []struct {
		name string
		dec  *foodmatch.Graph
	}{
		{"perfect weights", nil},
		{"GPS-learned weights", lg},
	} {
		cfg := foodmatch.ExperimentConfig("CityB", 0.01)
		orders := foodmatch.OrderStreamWindow(city, 1, from, to)
		fleet := city.Fleet(1.0, cfg.MaxO, 1)
		sim, err := foodmatch.NewSimulator(g, orders, fleet,
			foodmatch.NewFoodMatch(), cfg, foodmatch.SimOptions{DecisionGraph: variant.dec})
		if err != nil {
			log.Fatal(err)
		}
		m := sim.Run(from, to)
		fmt.Printf("%-20s objective %.1f h, delivered %d/%d, mean delivery %.1f min\n",
			variant.name, m.ObjectiveHours(), m.Delivered, m.TotalOrders, m.MeanDeliveryMin())
	}
	fmt.Println("\nThe gap between the two rows is the price of weight-estimation error —")
	fmt.Println("why the paper learns per-slot averages from six days of pings rather than")
	fmt.Println("assuming free-flow times.")
}
