// Custom city: build a workload from scratch — your own street grid,
// demand profile, fleet and operating constraints — instead of the Table II
// presets. Shows the full surface of CityParams and how to compare policies
// on a bespoke scenario (here: a beach town whose demand is one huge
// evening peak and whose streets are slow).
package main

import (
	"fmt"
	"log"
	"strings"

	foodmatch "repro"
)

func main() {
	// Demand: almost everything lands between 18:00 and 22:00.
	var hourly [24]float64
	for h := range hourly {
		hourly[h] = 0.2
	}
	hourly[18], hourly[19], hourly[20], hourly[21] = 2.5, 4.0, 4.5, 2.5

	city, err := foodmatch.GenerateCity(foodmatch.CityParams{
		Name:            "BeachTown",
		Rows:            24,
		Cols:            30, // long and thin, like a coastal strip
		BlockM:          180,
		ArterialEvery:   6,
		LocalSpeedMS:    3.2, // slow, crowded streets
		ArterialSpeedMS: 5.5,
		DiagonalFrac:    0.03,
		Hotspots:        3, // a boardwalk and two food courts
		Restaurants:     36,
		Vehicles:        140,
		OrdersPerDay:    1600,
		PrepMeanMin:     11, // seafood takes a while
		Hourly:          hourly,
		CustomerSpreadM: 1400,
		TargetPeakRatio: 4.0,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Operating constraints: tiny scooters (2 orders, 6 items), a stricter
	// 35-minute promise, and a 25-minute rejection deadline.
	base := foodmatch.DefaultConfig()
	base.MaxO = 2
	base.MaxI = 6
	base.MaxFirstMile = 35 * 60
	base.RejectAfter = 25 * 60
	base.KFactor = 25

	from, to := 18.0*3600, 22.0*3600
	fmt.Printf("BeachTown: %d nodes, %d restaurants, evening-only demand\n\n",
		city.G.NumNodes(), len(city.Restaurants))
	fmt.Printf("%-10s %9s %9s %8s %8s %7s\n", "policy", "delivered", "rejected", "obj(h)", "wait(h)", "o/km")
	fmt.Println(strings.Repeat("-", 56))

	for _, name := range []string{"foodmatch", "greedy", "km", "reyes"} {
		pol, err := foodmatch.PolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := base.Clone()
		if name == "km" {
			foodmatch.ConfigureVanillaKM(cfg)
		}
		orders := foodmatch.OrderStreamWindow(city, 42, from, to)
		fleet := city.Fleet(1.0, cfg.MaxO, 42)
		sim, err := foodmatch.NewSimulator(city.G, orders, fleet, pol, cfg, foodmatch.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		m := sim.Run(from, to)
		fmt.Printf("%-10s %9d %9d %8.1f %8.1f %7.3f\n",
			pol.Name(), m.Delivered, m.Rejected, m.ObjectiveHours(), m.WaitHours(), m.OrdersPerKm())
	}

	fmt.Println("\nWith 2-order scooters the batching headroom halves; FOODMATCH stays in")
	fmt.Println("front of KM and Reyes on every metric and trades roughly even with Greedy")
	fmt.Println("on the objective while wasting a third of the driver waiting time.")
}
