// Quickstart: generate a small city, run FOODMATCH over the lunch hour and
// print the delivery metrics. This is the smallest end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	foodmatch "repro"
)

func main() {
	// A deterministic Table II city at laptop scale (City A is the small
	// one: ~250 road nodes, ~50 riders, ~470 orders/day at 1:50).
	city, err := foodmatch.LoadCity("CityA", foodmatch.DefaultScale, 1)
	if err != nil {
		log.Fatal(err)
	}

	// One lunch hour of orders and the full rider roster.
	from, to := 12.0*3600, 13.0*3600
	orders := foodmatch.OrderStreamWindow(city, 1, from, to)
	cfg := foodmatch.ExperimentConfig("CityA", foodmatch.DefaultScale)
	fleet := city.Fleet(1.0, cfg.MaxO, 1)

	fmt.Printf("city: %d intersections, %d road segments, %d restaurants\n",
		city.G.NumNodes(), city.G.NumEdges(), len(city.Restaurants))
	fmt.Printf("workload: %d orders, %d riders on roster\n\n", len(orders), len(fleet))

	// Simulate under the full FOODMATCH pipeline: batching, sparsified
	// FoodGraph, Kuhn–Munkres matching, reshuffling, angular distance.
	sim, err := foodmatch.NewSimulator(city.G, orders, fleet,
		foodmatch.NewFoodMatch(), cfg, foodmatch.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m := sim.Run(from, to)

	fmt.Println(m.Summary())
	fmt.Printf("mean delivery time: %.1f min (extra over the lower bound: %.1f min)\n",
		m.MeanDeliveryMin(), m.MeanXDTMin())
	fmt.Printf("driver time wasted waiting at restaurants: %.1f hours\n", m.WaitHours())
	fmt.Printf("orders carried per km driven: %.3f\n", m.OrdersPerKm())

	// Every order's lifecycle is inspectable after the run.
	var firstDelivered *foodmatch.Order
	for _, o := range orders {
		if o.DeliveredAt > 0 && (firstDelivered == nil || o.DeliveredAt < firstDelivered.DeliveredAt) {
			firstDelivered = o
		}
	}
	if firstDelivered != nil {
		fmt.Printf("\nfirst delivery: order %d placed %.0fs into the hour, prep %.0f min, delivered %.1f min later by vehicle %d\n",
			firstDelivered.ID, firstDelivered.PlacedAt-from, firstDelivered.Prep/60,
			firstDelivered.DeliveryTime()/60, firstDelivered.AssignedTo)
	}
}
