// Custom policy composition: the pipeline API lets you mix assignment
// stages without forking internals. This example builds a hybrid policy —
// the cheap nearest-neighbour greedy batcher feeding the optimal
// Kuhn–Munkres matcher — and runs it over an LRU-cached hub-label Router
// instead of the default bounded-Dijkstra cache, then replays the same
// dinner peak under stock FOODMATCH for comparison.
//
//	go run ./examples/custom-policy
//
// Expected shape: the hybrid trades some XDT (its batches are built by a
// single greedy sweep, not Algorithm 1's merge clustering) for a simpler,
// faster batching stage; the cached hub-label Router answers the pipeline's
// repeated point-to-point queries with high hit rates.
package main

import (
	"context"
	"fmt"
	"os"

	foodmatch "repro"
)

func main() {
	const (
		cityName = "CityB"
		scale    = 0.02
		seed     = 1
	)
	city, err := foodmatch.LoadCity(cityName, scale, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	from, to := 19.0*3600, 21.0*3600

	// The hybrid pipeline: greedy batching + KM matching + incumbent
	// reshuffling, composed from the same stages FOODMATCH uses.
	hybrid := foodmatch.NewPipeline(
		foodmatch.WithLabel("GreedyBatch+KM"),
		foodmatch.WithBatcher(foodmatch.NewGreedyBatcher(0)),
		foodmatch.WithMatcher(foodmatch.NewKMMatcher()),
	)

	// The distance substrate: exact hub labels behind an LRU memo. One
	// Router per simulator run (hub labels build per-slot indexes lazily).
	type run struct {
		pol    foodmatch.Policy
		router foodmatch.Router
		note   string
	}
	runs := []run{
		{foodmatch.NewFoodMatch(), nil, "stock (bounded-Dijkstra cache)"},
		{hybrid, foodmatch.NewCachedRouter(foodmatch.NewHubLabels(city.G), 1<<17), "cached hub labels"},
	}

	fmt.Printf("%s @ %.0f%% scale, dinner 19:00-21:00, %d road nodes\n\n",
		cityName, scale*100, city.G.NumNodes())
	fmt.Printf("%-16s %-32s %10s %10s %10s %10s\n",
		"policy", "router", "delivered", "rejected", "XDT h", "dist km")
	for _, r := range runs {
		cfg := foodmatch.ExperimentConfig(cityName, scale)
		orders := foodmatch.OrderStreamWindow(city, seed, from, to)
		fleet := city.Fleet(1.0, cfg.MaxO, seed)
		s, err := foodmatch.NewSimulator(city.G, orders, fleet, r.pol, cfg,
			foodmatch.SimOptions{Quiet: true, Router: r.router})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m := s.RunContext(context.Background(), from, to)
		fmt.Printf("%-16s %-32s %10d %10d %10.1f %10.1f\n",
			r.pol.Name(), r.note, m.Delivered, m.Rejected, m.XDTSec/3600, m.DistM/1000)
	}
	fmt.Println("\nXDT = extra delivery time beyond each order's shortest possible (lower is better).")
}
