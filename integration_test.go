package foodmatch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// newDeterministicRand keeps facade tests reproducible.
func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(77)) }

// TestEndToEndFacade runs the full pipeline through the public API only:
// load a preset, stream orders, simulate under each policy and check the
// cross-policy invariants the paper's evaluation rests on.
func TestEndToEndFacade(t *testing.T) {
	city, err := LoadCity("CityB", 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	from, to := 19.0*3600, 21.0*3600

	results := map[string]*Metrics{}
	for _, name := range []string{"foodmatch", "km", "greedy", "reyes"} {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ExperimentConfig("CityB", 0.01)
		if name == "km" {
			ConfigureVanillaKM(cfg)
		}
		orders := OrderStreamWindow(city, 1, from, to)
		fleet := city.Fleet(1.0, cfg.MaxO, 1)
		sim, err := NewSimulator(city.G, orders, fleet, pol, cfg, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m := sim.Run(from, to)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s metrics: %v", name, err)
		}
		if m.TotalOrders == 0 {
			t.Fatalf("%s: no orders admitted", name)
		}
		if m.Delivered+m.Rejected+m.Stranded != m.TotalOrders {
			t.Fatalf("%s: orders unaccounted (%d delivered, %d rejected, %d stranded of %d)",
				name, m.Delivered, m.Rejected, m.Stranded, m.TotalOrders)
		}
		results[name] = m
	}

	fm := results["foodmatch"]
	// The reproduction's headline invariants at the dinner peak:
	// FOODMATCH beats vanilla KM and Reyes on the Problem 1 objective...
	if fm.ObjectiveHours() >= results["km"].ObjectiveHours() {
		t.Errorf("FoodMatch objective %.1f should beat KM %.1f",
			fm.ObjectiveHours(), results["km"].ObjectiveHours())
	}
	if fm.ObjectiveHours() >= results["reyes"].ObjectiveHours() {
		t.Errorf("FoodMatch objective %.1f should beat Reyes %.1f",
			fm.ObjectiveHours(), results["reyes"].ObjectiveHours())
	}
	// ...carries more orders per km than every baseline...
	for _, base := range []string{"km", "greedy", "reyes"} {
		if fm.OrdersPerKm() <= results[base].OrdersPerKm() {
			t.Errorf("FoodMatch O/Km %.3f should beat %s %.3f",
				fm.OrdersPerKm(), base, results[base].OrdersPerKm())
		}
	}
	// ...and wastes less driver waiting time than Greedy and KM.
	for _, base := range []string{"km", "greedy"} {
		if fm.WaitHours() >= results[base].WaitHours() {
			t.Errorf("FoodMatch WT %.1f should beat %s %.1f",
				fm.WaitHours(), base, results[base].WaitHours())
		}
	}
}

// TestFacadeDeterminism ensures the public pipeline is reproducible
// end-to-end from seeds.
func TestFacadeDeterminism(t *testing.T) {
	run := func() *Metrics {
		city, err := LoadCity("CityA", 0.02, 5)
		if err != nil {
			t.Fatal(err)
		}
		orders := OrderStreamWindow(city, 5, 12*3600, 13*3600)
		cfg := ExperimentConfig("CityA", 0.02)
		fleet := city.Fleet(1.0, cfg.MaxO, 5)
		sim, err := NewSimulator(city.G, orders, fleet, NewFoodMatch(), cfg, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run(12*3600, 13*3600)
	}
	a, b := run(), run()
	if a.XDTSec != b.XDTSec || a.DistM != b.DistM || a.WaitSec != b.WaitSec || a.Delivered != b.Delivered {
		t.Fatalf("pipeline not deterministic:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// TestFacadeTraceConsistency cross-checks the trace subsystem against the
// metrics through the public API.
func TestFacadeTraceConsistency(t *testing.T) {
	city, err := LoadCity("CityA", 0.02, 2)
	if err != nil {
		t.Fatal(err)
	}
	orders := OrderStreamWindow(city, 2, 12*3600, 13*3600)
	cfg := ExperimentConfig("CityA", 0.02)
	fleet := city.Fleet(1.0, cfg.MaxO, 2)
	rec := NewTraceRecorder()
	sim, err := NewSimulator(city.G, orders, fleet, NewFoodMatch(), cfg, SimOptions{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run(12*3600, 13*3600)
	sum := rec.Summarise(cfg.MaxFirstMile)
	if sum.Delivered != m.Delivered || sum.Rejected != m.Rejected {
		t.Fatalf("trace summary (%+v) disagrees with metrics (%s)", sum, m.Summary())
	}
	if sum.Orders != m.TotalOrders {
		t.Fatalf("trace orders %d != metrics %d", sum.Orders, m.TotalOrders)
	}
}

// TestHubLabelsFacade checks the exported distance index against the plain
// shortest-path oracle on a preset network.
func TestHubLabelsFacade(t *testing.T) {
	city, err := LoadCity("CityA", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewHubLabels(city.G)
	n := city.G.NumNodes()
	for i := 0; i < 50; i++ {
		u := NodeID((i * 13) % n)
		v := NodeID((i * 29) % n)
		want := ShortestPath(city.G, u, v, 12*3600)
		got := ix.Dist(u, v, 12*3600)
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("hub labels (%d->%d) = %v, Dijkstra = %v", u, v, got, want)
		}
	}
}

// TestExperimentRegistry ensures every registered experiment id resolves
// and the registry matches DESIGN.md's index.
func TestExperimentRegistry(t *testing.T) {
	want := []string{"F4a", "F6a", "F6b", "F6cde", "F6fgh", "F6ijk",
		"F7a", "F7bcde", "F8ac", "F8dg", "F8hk", "F9ac", "F9d",
		"T2", "X1", "X2", "X3", "X4", "X5", "X6", "X7"}
	got := ExperimentIDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d ids, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, err := RunExperiment("nope", DefaultExperimentSetup()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestConfigSlotHelpers pins the hour-slot convention the whole pipeline
// shares.
func TestConfigSlotHelpers(t *testing.T) {
	if roadnet.Slot(19.5*3600) != 19 {
		t.Fatal("slot convention broken")
	}
	if DefaultConfig().Delta != 180 {
		t.Fatal("default delta should be the paper's 3 minutes")
	}
}

// TestGPSFacade exercises the exported GPS pipeline end to end.
func TestGPSFacade(t *testing.T) {
	city, err := LoadCity("CityA", 0.02, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := city.G
	p := RoadPath(g, 0, NodeID(g.NumNodes()-1), 9*3600)
	if p == nil {
		t.Fatal("no path across the city")
	}
	rng := newDeterministicRand()
	pings := SynthesizePings(g, GPSDrive{Nodes: p.Nodes, Times: p.Times}, 20, 15, rng)
	if len(pings) < 3 {
		t.Fatalf("only %d pings", len(pings))
	}
	m := NewGPSMatcher(g, DefaultGPSMatchOptions())
	matched, ok := m.Match(pings)
	if !ok {
		t.Fatal("match failed")
	}
	l := NewSpeedLearner(g)
	times := make([]float64, len(pings))
	for i := range pings {
		times[i] = pings[i].T
	}
	l.ObserveDrive(matched, times)
	if _, cells := l.MeanAbsErrorSec(1); cells == 0 {
		t.Fatal("learner observed nothing")
	}
}
